"""Endpoints, topology wiring, and packet-level gap detection.

The SLIM protocol runs over unreliable datagrams (Section 2.2).  This
module is the *packet* layer: :class:`Endpoint` detects sequence gaps
with a reorder-tolerance window and reports each missing seq exactly
once; :class:`Network` builds the switched star fabric.  The display
protocol's actual recovery lives in :mod:`repro.transport` — the server
re-encodes damaged regions from its current framebuffer, because
replaying old bytes verbatim is wrong for COPY (its source may have
changed) and for ordering (a stale SET can overwrite newer content).
:class:`ReplayBuffer` remains for flows whose messages really are
immutable and idempotent (e.g. audio): a ring of recently sent messages
served back by seq, with no stop-and-wait and no cumulative ACKs.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.netsim.backend import SimulationBackend
from repro.netsim.link import Link
from repro.netsim.packet import Packet
from repro.netsim.profiles import NetworkProfile
from repro.netsim.switch import Switch
from repro.obs.context import ObsContext, get_obs
from repro.telemetry.metrics import MetricsRegistry, get_registry


class ReplayBuffer:
    """Sender-side store of recently transmitted messages, keyed by seq.

    Args:
        capacity: Number of messages retained; the oldest are evicted.
        registry: Telemetry sink; defaults to the process-global one.
    """

    def __init__(
        self, capacity: int = 256, registry: Optional[MetricsRegistry] = None
    ) -> None:
        if capacity <= 0:
            raise SimulationError("replay buffer capacity must be positive")
        self.capacity = capacity
        self._messages: "OrderedDict[int, object]" = OrderedDict()
        self.replays_served = 0
        self.replays_missed = 0
        self._metrics = registry if registry is not None else get_registry()

    def store(self, seq: int, message: object) -> None:
        """Remember a sent message for potential replay."""
        self._messages[seq] = message
        self._messages.move_to_end(seq)
        while len(self._messages) > self.capacity:
            self._messages.popitem(last=False)

    def replay(self, seq: int) -> Optional[object]:
        """Fetch a message for retransmission; None if already evicted."""
        message = self._messages.get(seq)
        if message is None:
            self.replays_missed += 1
            if self._metrics.enabled:
                self._metrics.counter("net.transport.replays_missed").inc()
        else:
            self.replays_served += 1
            if self._metrics.enabled:
                self._metrics.counter("net.transport.replays_served").inc()
        return message

    def __len__(self) -> int:
        return len(self._messages)


#: How many already-reported sequence numbers an endpoint remembers for
#: deduplication before the oldest are forgotten.
REPORTED_SEQ_MEMORY = 4096


class Endpoint:
    """A network-attached node: receives packets, tracks sequence gaps.

    Gap detection is reorder-tolerant: a hole in the sequence space is
    only *suspected* when a higher seq arrives, and only *reported* (via
    ``on_gap``) once ``reorder_window`` further packets have arrived
    without the hole filling — the TCP fast-retransmit idea.  A plainly
    reordered fabric therefore generates no recovery traffic, and each
    missing seq is reported at most once (late arrivals and duplicates
    cancel or dedupe the report) instead of re-firing on every
    subsequent out-of-order packet.

    Args:
        address: Fabric address (must be unique in the network).
        on_receive: Callback invoked with each delivered packet.
        on_gap: Optional callback invoked with missing sequence numbers
            when a gap is detected in a flow tagged with integer seqs.
        reorder_window: Packets a suspected hole may stay unfilled
            before it is reported.  0 reports on the packet that exposes
            the gap (the pre-reorder-tolerant behaviour).
    """

    def __init__(
        self,
        address: str,
        on_receive: Optional[Callable[[Packet], None]] = None,
        on_gap: Optional[Callable[[List[int]], None]] = None,
        reorder_window: int = 3,
    ) -> None:
        if reorder_window < 0:
            raise SimulationError("reorder window cannot be negative")
        self.address = address
        self.on_receive = on_receive
        self.on_gap = on_gap
        self.reorder_window = reorder_window
        self.packets_received = 0
        self.bytes_received = 0
        self._next_expected_seq: Optional[int] = None
        #: Suspected-missing seq -> packets seen since it was suspected.
        self._suspects: "OrderedDict[int, int]" = OrderedDict()
        #: Seqs already handed to ``on_gap`` (bounded dedupe memory).
        self._reported: "OrderedDict[int, None]" = OrderedDict()
        self.gaps_detected = 0

    def deliver(self, packet: Packet) -> None:
        """Called by the fabric when a packet arrives.

        Pooled packets (:meth:`Packet.acquire`) are recycled once the
        receive hook returns — hooks may keep the payload, never the
        packet itself.
        """
        self.packets_received += 1
        self.bytes_received += packet.nbytes
        seq = getattr(packet.payload, "seq", None)
        if seq is not None:
            self._track_seq(int(seq))
        if self.on_receive is not None:
            self.on_receive(packet)
        if packet.pooled:
            packet.release()

    def _track_seq(self, seq: int) -> None:
        # A late (or duplicate) arrival fills its hole: no report needed.
        self._suspects.pop(seq, None)
        for suspect in self._suspects:
            self._suspects[suspect] += 1
        if self._next_expected_seq is not None and seq > self._next_expected_seq:
            for missing in range(self._next_expected_seq, seq):
                if missing not in self._suspects and missing not in self._reported:
                    self._suspects[missing] = 0
        if self._next_expected_seq is None or seq >= self._next_expected_seq:
            self._next_expected_seq = seq + 1
        ripe = [s for s, age in self._suspects.items() if age >= self.reorder_window]
        if ripe:
            self._report_gap(sorted(ripe))

    def _report_gap(self, missing: List[int]) -> None:
        for seq in missing:
            del self._suspects[seq]
            self._reported[seq] = None
        while len(self._reported) > REPORTED_SEQ_MEMORY:
            self._reported.popitem(last=False)
        self.gaps_detected += 1
        metrics = get_registry()
        if metrics.enabled:
            metrics.counter(
                "net.transport.gaps_detected", endpoint=self.address
            ).inc()
            metrics.counter(
                "net.transport.retransmits_requested", endpoint=self.address
            ).inc(len(missing))
        if self.on_gap is not None:
            self.on_gap(missing)


def _split_rng(
    rng: Optional[np.random.Generator],
) -> Tuple[Optional[np.random.Generator], Optional[np.random.Generator]]:
    """Two independent generators derived from one attach-time rng.

    The uplink and downlink must not consume a single stream: reverse-path
    control traffic (NACKs, FRONTIERs) would then shift the forward
    path's loss pattern, coupling the two directions' error processes.
    ``Generator.spawn`` (numpy >= 1.25) derives statistically independent
    children; older numpys fall back to seeding from the parent.
    """
    if rng is None:
        return None, None
    try:
        up, down = rng.spawn(2)
    except (AttributeError, TypeError):
        seeds = rng.integers(0, 2**63, size=2)
        up = np.random.default_rng(int(seeds[0]))
        down = np.random.default_rng(int(seeds[1]))
    return up, down


class Network:
    """Builds and owns a switched star topology.

    Every endpoint hangs off one switch via a full-duplex pair of links,
    mirroring the paper's configuration (consoles and servers on a
    workgroup switch).  Asymmetric rates are supported so the server can
    have a faster uplink (the case studies use 1 Gbps server links).
    """

    def __init__(
        self,
        sim: SimulationBackend,
        default_rate_bps: float,
        propagation_delay: float = 5e-6,
        forwarding_delay: float = 5e-6,
        registry: Optional[MetricsRegistry] = None,
        obs: Optional[ObsContext] = None,
    ) -> None:
        self.sim = sim
        self.default_rate_bps = default_rate_bps
        self.propagation_delay = propagation_delay
        self._registry = registry
        self._obs = obs if obs is not None else get_obs()
        self.switch = Switch(sim, forwarding_delay=forwarding_delay, registry=registry)
        self._endpoints: Dict[str, Endpoint] = {}
        self._uplinks: Dict[str, Link] = {}   # endpoint -> switch
        self._downlinks: Dict[str, Link] = {}  # switch -> endpoint

    def attach(
        self,
        endpoint: Endpoint,
        rate_bps: Optional[float] = None,
        queue_limit_bytes: Optional[int] = None,
        loss_rate: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        profile: Optional[NetworkProfile] = None,
    ) -> Endpoint:
        """Connect an endpoint to the switch with a full-duplex link pair.

        Pass a :class:`~repro.netsim.profiles.NetworkProfile` to model a
        WAN/mobile access link (asymmetric rates, latency, jitter, burst
        loss); a profile replaces the explicit link kwargs.  The ``rng``
        is split into independent per-direction streams, so loss and
        jitter decisions on the reverse path (NACKs, FRONTIERs) never
        perturb the forward path's patterns.
        """
        if endpoint.address in self._endpoints:
            raise SimulationError(f"address {endpoint.address!r} already attached")
        if profile is not None:
            if rate_bps is not None or queue_limit_bytes is not None or loss_rate:
                raise SimulationError(
                    "pass either a profile or explicit link kwargs, not both"
                )
            if profile.randomized and rng is None:
                raise SimulationError(
                    f"profile {profile.name!r} requires an rng for determinism"
                )
            up_params, down_params = profile.link_params()
        else:
            rate = rate_bps if rate_bps is not None else self.default_rate_bps
            common = {
                "propagation_delay": self.propagation_delay,
                "loss_rate": loss_rate,
            }
            up_params = dict(common, rate_bps=rate)
            down_params = dict(
                common, rate_bps=rate, queue_limit_bytes=queue_limit_bytes
            )
        up_rng, down_rng = _split_rng(rng)
        uplink = Link(
            self.sim,
            deliver=self.switch.ingress,
            rng=up_rng,
            name=f"{endpoint.address}->switch",
            registry=self._registry,
            obs=self._obs,
            **up_params,
        )
        downlink = Link(
            self.sim,
            deliver=endpoint.deliver,
            rng=down_rng,
            name=f"switch->{endpoint.address}",
            registry=self._registry,
            obs=self._obs,
            **down_params,
        )
        if self._obs is not None and self._obs.capture is not None:
            # Tap uplinks only: every frame enters the fabric exactly
            # once, so the capture sees each datagram exactly once.
            uplink.capture = self._obs.capture
        self.switch.attach_port(endpoint.address, downlink)
        self._endpoints[endpoint.address] = endpoint
        self._uplinks[endpoint.address] = uplink
        self._downlinks[endpoint.address] = downlink
        return endpoint

    def send(self, packet: Packet) -> bool:
        """Inject a packet from its source endpoint's uplink."""
        uplink = self._uplinks.get(packet.src)
        if uplink is None:
            raise SimulationError(f"unknown source endpoint {packet.src!r}")
        if packet.dst not in self._endpoints:
            raise SimulationError(f"unknown destination endpoint {packet.dst!r}")
        packet.created_at = self.sim.now
        return uplink.send(packet)

    def send_burst(self, packets: List[Packet]) -> List[bool]:
        """Inject a same-source packet train in one fabric operation.

        Equivalent to calling :meth:`send` on each packet in order, but
        rides the uplink's burst path (vectorized loss draws, batched
        arrival cohorts) — the natural entry point for fragment trains
        and per-tick workload bursts.
        """
        if not packets:
            return []
        src = packets[0].src
        uplink = self._uplinks.get(src)
        if uplink is None:
            raise SimulationError(f"unknown source endpoint {src!r}")
        now = self.sim.now
        for packet in packets:
            if packet.src != src:
                raise SimulationError(
                    "send_burst requires a single source endpoint, got "
                    f"{src!r} and {packet.src!r}"
                )
            if packet.dst not in self._endpoints:
                raise SimulationError(
                    f"unknown destination endpoint {packet.dst!r}"
                )
            packet.created_at = now
        return uplink.send_burst(packets)

    def endpoint(self, address: str) -> Endpoint:
        try:
            return self._endpoints[address]
        except KeyError as exc:
            raise SimulationError(f"unknown endpoint {address!r}") from exc

    def downlink(self, address: str) -> Link:
        """The switch->endpoint link (the Figure 11 contention point)."""
        return self._downlinks[address]

    def uplink(self, address: str) -> Link:
        return self._uplinks[address]
