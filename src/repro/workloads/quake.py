"""The Quake workload (Section 7.3).

The game engine renders 8-bit indexed-color frames on the server; a
translation layer converts them to 5-bit YUV via a colormap-derived
lookup table and component subsampling, then ships them with CSCS.

Paper-anchored costs (336 MHz E4500 CPU): at 640x480 the YUV translation
took ~30 ms/frame and transmission ~13 ms/frame, bounding the display
rate near 23 Hz; the engine's own rendering adds a scene-dependent
5-10 ms.  All three scale with frame area.

The module implements the translation for real — indexed frames, RGB
colormap, YUV lookup table — so fidelity tests can check the pipeline,
while the cost constants drive the Section 7.3 throughput experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.framebuffer.yuv import rgb_to_yuv

#: 336 MHz CPU seconds per pixel, from the paper's 640x480 measurements.
TRANSLATE_S_PER_PIXEL = 30e-3 / (640 * 480)
TRANSMIT_S_PER_PIXEL = 13e-3 / (640 * 480)
#: Scene rendering cost range per pixel (drives the 18-21 Hz spread).
RENDER_S_PER_PIXEL_MIN = 5e-3 / (640 * 480)
RENDER_S_PER_PIXEL_MAX = 10e-3 / (640 * 480)
#: Resolution-independent per-frame engine work (game logic, input,
#: syscalls); explains why throughput scales sub-linearly when the
#: resolution drops.
ENGINE_FIXED_S_PER_FRAME = 4e-3


@dataclass(frozen=True)
class QuakeConfig:
    """One Quake run configuration."""

    width: int
    height: int
    bits_per_pixel: int = 5
    target_fps: float = 60.0  # engine cap; never the binding constraint

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise WorkloadError(f"bad resolution {self.width}x{self.height}")

    @property
    def pixels(self) -> int:
        return self.width * self.height

    def translate_s_per_frame(self) -> float:
        return TRANSLATE_S_PER_PIXEL * self.pixels

    def transmit_s_per_frame(self) -> float:
        return TRANSMIT_S_PER_PIXEL * self.pixels

    def render_s_per_frame(self, scene_complexity: float = 0.5) -> float:
        """Engine render cost; ``scene_complexity`` in [0, 1]."""
        if not 0.0 <= scene_complexity <= 1.0:
            raise WorkloadError("scene_complexity must be in [0, 1]")
        per_pixel = RENDER_S_PER_PIXEL_MIN + scene_complexity * (
            RENDER_S_PER_PIXEL_MAX - RENDER_S_PER_PIXEL_MIN
        )
        return ENGINE_FIXED_S_PER_FRAME + per_pixel * self.pixels


#: The paper's three configurations.
QUAKE_FULL = QuakeConfig(640, 480)
QUAKE_THREE_QUARTER = QuakeConfig(480, 360)
QUAKE_QUARTER = QuakeConfig(320, 240)


class QuakeEngine:
    """Synthesises 8-bit indexed frames and translates them to YUV.

    This is the translation layer of Section 7.3 made concrete: a 256-
    entry RGB colormap, a YUV lookup table derived from it, and per-frame
    conversion via table lookup.
    """

    def __init__(self, config: QuakeConfig, seed: int = 0) -> None:
        self.config = config
        rng = np.random.default_rng(seed)
        # A Quake-ish palette: dark corridors, browns, a few brights.
        base = rng.integers(0, 256, size=(256, 3))
        ramp = np.linspace(0.15, 1.0, 256)[:, None]
        self.colormap = np.clip(base * ramp, 0, 255).astype(np.uint8)
        self.yuv_table = rgb_to_yuv(self.colormap[None, :, :])[0]
        self._rng = rng

    def render_frame(self) -> np.ndarray:
        """One 8-bit indexed frame (h, w) — walls, floor, moving blobs."""
        h, w = self.config.height, self.config.width
        yy, xx = np.mgrid[0:h, 0:w]
        t = float(self._rng.uniform(0, 100))
        # Banded architecture + a couple of moving "entities".
        frame = ((yy // 16 * 7 + xx // 24 * 13) % 200).astype(np.uint8)
        cx, cy = int((np.sin(t) * 0.4 + 0.5) * w), int((np.cos(t) * 0.4 + 0.5) * h)
        blob = (xx - cx) ** 2 + (yy - cy) ** 2 < (min(h, w) // 6) ** 2
        frame[blob] = 220 + (frame[blob] % 30)
        return frame

    def translate(self, indexed: np.ndarray) -> np.ndarray:
        """Indexed 8-bit frame -> YUV planes via the lookup table."""
        if indexed.shape != (self.config.height, self.config.width):
            raise WorkloadError(
                f"frame shape {indexed.shape} does not match config"
            )
        return self.yuv_table[indexed]

    def rgb_frame(self, indexed: np.ndarray) -> np.ndarray:
        """Indexed frame -> RGB via the colormap (for CSCS encoding)."""
        return self.colormap[indexed]

    def frames(self, count: int) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield (indexed, rgb) frame pairs."""
        for _ in range(count):
            indexed = self.render_frame()
            yield indexed, self.rgb_frame(indexed)
