"""repro.perf — continuous performance observability for the simulator.

The paper measures SLIM's interactive performance; this package measures
the *reproduction's* execution performance, so every commit leaves a
comparable perf datapoint behind:

* :mod:`repro.perf.harness` — pinned, seeded benchmark scenarios with
  median-of-N timing, warmup discard, and out-of-band memory capture;
* :mod:`repro.perf.scenarios` — the ~8 registered hot-path scenarios
  (import it to populate the registry);
* :mod:`repro.perf.schema` — the versioned ``BENCH_<git-sha>.json``
  trajectory format;
* :mod:`repro.perf.progress` — the live progress/health line long
  simulator runs print while working;
* :mod:`repro.perf.scale` — the shared full-scale/reduced-scale knobs.

Workflow::

    python -m repro.perf --quick            # writes BENCH_<sha>.json
    python -m repro.tools.benchdiff BENCH_old.json BENCH_new.json
"""

from repro.perf.harness import (
    Metric,
    SCENARIOS,
    ScenarioContext,
    ScenarioRun,
    ScenarioSpec,
    measure_scenario,
    run_harness,
    scenario,
)
from repro.perf.progress import ProgressMonitor, live_progress
from repro.perf.schema import (
    BenchSchemaError,
    SCHEMA_VERSION,
    bench_document,
    default_bench_path,
    git_sha,
    load_bench,
    validate,
    write_bench,
)

__all__ = [
    "BenchSchemaError",
    "Metric",
    "ProgressMonitor",
    "SCENARIOS",
    "SCHEMA_VERSION",
    "ScenarioContext",
    "ScenarioRun",
    "ScenarioSpec",
    "bench_document",
    "default_bench_path",
    "git_sha",
    "live_progress",
    "load_bench",
    "measure_scenario",
    "run_harness",
    "scenario",
    "validate",
    "write_bench",
]
