"""Console half of the display channel: gap tracking and NACKs.

The console is stateless about display *content* but stateful about the
wire: it tracks which sequence numbers have been accounted for and asks
the server — with real NACK packets over the reverse path, paying
serialization, queueing, and propagation like any other traffic — about
the ones that have not.  Three events resolve a sequence number:

* the message completes reassembly (the common case),
* the server confirms it was superseded by a fresh re-encode
  (``StatusKind.RECOVERED``), or
* it is covered by a full-screen refresh, which arrives as ordinary new
  messages plus the same confirmation.

Suspicion is reorder-tolerant: a hole is NACKed only after
``nack_delay`` seconds without filling, so a fabric that merely reorders
generates zero recovery traffic.  NACKs that are themselves lost are
retried when the server's next periodic ``SYNC`` arrives — the status
exchange bounds tail-loss recovery, so the last message of a burst is
recovered without any out-of-band settle loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ProtocolError
from repro.core import commands as cmd
from repro.core.commands import StatusKind
from repro.core.wire import Datagram, WireCodec
from repro.console.console import Console
from repro.netsim.packet import Packet
from repro.netsim.transport import Endpoint, Network
from repro.obs.context import ObsContext, get_obs
from repro.telemetry.metrics import MetricsRegistry, get_registry

#: Recovery-latency histogram bounds, seconds.  Sized around the NACK
#: machinery's own clocks (2 ms nack_delay, 100 ms nack_timeout) and
#: the 300 ms loss-recovery SLO, so windowed quantiles resolve both
#: healthy recoveries and budget-blowing ones.
RECOVERY_LATENCY_BUCKETS = (
    0.005,
    0.010,
    0.025,
    0.050,
    0.100,
    0.150,
    0.300,
    0.500,
    1.0,
    2.0,
)

#: Console -> server control traffic flow label.
CONTROL_FLOW = "display-control"


class PendingRecovery:
    """One sequence number the console believes is missing.

    A ``__slots__`` class: one is allocated per suspected loss on the
    decode hot path.
    """

    __slots__ = ("seq", "suspected_at", "nacked_at", "nacks")

    def __init__(
        self,
        seq: int,
        suspected_at: float,
        nacked_at: Optional[float] = None,
        nacks: int = 0,
    ) -> None:
        self.seq = seq
        self.suspected_at = suspected_at
        self.nacked_at = nacked_at
        self.nacks = nacks


@dataclass
class ConsoleChannelStats:
    """Counters the console half maintains (always on, telemetry aside)."""

    messages_completed: int = 0
    suspects: int = 0
    nacks_sent: int = 0
    nack_bytes: int = 0
    recoveries_confirmed: int = 0
    syncs_received: int = 0
    frontiers_sent: int = 0
    recovery_latency_total: float = 0.0
    recovery_latency_max: float = 0.0
    recoveries_timed: int = 0

    def mean_recovery_latency(self) -> float:
        """Average suspicion-to-resolution time, seconds."""
        if self.recoveries_timed == 0:
            return 0.0
        return self.recovery_latency_total / self.recoveries_timed


class _SeqTracker:
    """Resolved-set with a moving frontier, plus a hole scanner.

    ``frontier`` is the lowest unresolved seq: everything below it has
    been received or confirmed recovered, so the resolved set stays
    small.  ``scanned_to`` remembers how far holes have already been
    turned into suspects, keeping the scan incremental.  Slotted: its
    fields are touched once per completed message.
    """

    __slots__ = ("frontier", "scanned_to", "highest_seen", "resolved")

    def __init__(self) -> None:
        self.frontier = 0
        self.scanned_to = 0
        self.highest_seen = -1
        self.resolved: set = set()

    def resolve(self, seq: int) -> bool:
        """Mark a seq accounted for; False if it already was."""
        if seq < self.frontier or seq in self.resolved:
            return False
        self.resolved.add(seq)
        while self.frontier in self.resolved:
            self.resolved.discard(self.frontier)
            self.frontier += 1
        return True

    def holes_below(self, top: int) -> range:
        """Seqs in ``[scanned_to, top)`` not yet categorised (callers
        filter resolved/pending); advances the scan cursor."""
        start = max(self.frontier, self.scanned_to)
        self.scanned_to = max(self.scanned_to, top)
        return range(start, top)


class ConsoleChannel:
    """Receiver half of the reliable display channel.

    Args:
        console: The console fed by this channel (must be simulator
            attached — recovery needs timers).
        network: The fabric both halves hang off.
        server_address: Fabric address of the server half.
        nack_delay: Seconds a suspected hole may stay unfilled before a
            NACK is sent (the reorder-tolerance window, in time).
        nack_timeout: Seconds after which an unanswered NACK is resent
            (checked when a server SYNC arrives).
        registry: Telemetry sink; defaults to the process-global one.
        obs: Observability context; defaults to the process-global one
            (usually ``None``).  Supplies the causal tracer that stamps
            reassembly times and follows console->server traffic.
    """

    def __init__(
        self,
        console: Console,
        network: Network,
        server_address: str = "server",
        nack_delay: float = 0.002,
        nack_timeout: float = 0.1,
        registry: Optional[MetricsRegistry] = None,
        obs: Optional[ObsContext] = None,
    ) -> None:
        if console.sim is None:
            raise ProtocolError("ConsoleChannel requires a simulator-attached console")
        if nack_delay < 0 or nack_timeout <= 0:
            raise ProtocolError("nack_delay/nack_timeout must be non-negative/positive")
        self.console = console
        self.network = network
        self.sim = console.sim
        self.address = console.address
        self.server_address = server_address
        self.nack_delay = nack_delay
        self.nack_timeout = nack_timeout
        self.tx = WireCodec()
        self.stats = ConsoleChannelStats()
        self.endpoint: Optional[Endpoint] = None
        self._tracker = _SeqTracker()
        self._pending: Dict[int, PendingRecovery] = {}
        obs = obs if obs is not None else get_obs()
        self._trace = obs.tracer if obs is not None else None
        self._metrics = registry if registry is not None else get_registry()
        # Pre-resolved telemetry handles: hot paths pay one None test
        # when telemetry is disabled (enablement is fixed at construction).
        self._m_nacks = self._m_nack_bytes = self._m_latency = None
        if self._metrics.enabled:
            m = self._metrics
            self._m_nacks = m.counter("transport.channel.nacks_sent")
            self._m_nack_bytes = m.counter("transport.channel.nack_bytes")
            self._m_latency = m.histogram(
                "transport.channel.recovery_latency_seconds",
                buckets=RECOVERY_LATENCY_BUCKETS,
            )

    # -- wiring ---------------------------------------------------------------
    def attach(self, **link_kwargs: object) -> Endpoint:
        """Attach this half to the network; wires console input too."""
        self.endpoint = Endpoint(self.address, on_receive=self.handle_packet)
        self.network.attach(self.endpoint, **link_kwargs)
        self.console.on_input = self.send_command
        return self.endpoint

    @property
    def frontier(self) -> int:
        """Lowest display seq not yet received or confirmed recovered."""
        return self._tracker.frontier

    @property
    def pending_recoveries(self) -> int:
        return len(self._pending)

    # -- receive path ---------------------------------------------------------
    def handle_packet(self, packet: Packet) -> None:
        """Endpoint receive hook: reassemble, track seqs, dispatch."""
        payload = packet.payload
        if isinstance(payload, Datagram):
            result = self.console.codec.accept(payload)
            if result is None:
                # A fragment proves every lower seq was already sent.
                self._scan_holes(payload.seq)
                return
            command, seq = result
            if self._trace is not None:
                self._trace.reassembled(
                    (packet.src, packet.dst, seq), command, self.sim.now
                )
            self._on_message(command, seq)
        elif isinstance(payload, cmd.Command):
            # Pre-decoded fast path (large sims); no wire-level tracking.
            self.console.enqueue(payload)

    def _on_message(self, command: cmd.Command, seq: int) -> None:
        self._scan_holes(seq)
        first = self._resolve(seq)
        if first:
            self.stats.messages_completed += 1
        if isinstance(command, cmd.StatusMessage):
            if command.kind == StatusKind.SYNC:
                self._on_sync(command.value)
            elif command.kind == StatusKind.RECOVERED:
                self._on_recovered(command.value)
            return
        self.console.enqueue(command)

    # -- gap tracking ---------------------------------------------------------
    def _scan_holes(self, seq: int, inclusive: bool = False) -> None:
        """Turn unaccounted seqs below ``seq`` into suspects."""
        self._tracker.highest_seen = max(self._tracker.highest_seen, seq)
        for missing in self._tracker.holes_below(seq + 1 if inclusive else seq):
            if missing in self._tracker.resolved or missing in self._pending:
                continue
            self._suspect(missing)

    def _suspect(self, seq: int) -> None:
        self._pending[seq] = PendingRecovery(seq=seq, suspected_at=self.sim.now)
        self.stats.suspects += 1
        self.sim.schedule(self.nack_delay, lambda: self._maybe_nack(seq))

    def _maybe_nack(self, seq: int) -> None:
        record = self._pending.get(seq)
        if record is None or record.nacked_at is not None:
            return  # resolved in the meantime, or already NACKed via SYNC
        self._send_nack(record)

    def _send_nack(self, record: PendingRecovery) -> None:
        record.nacked_at = self.sim.now
        record.nacks += 1
        nbytes = self.send_command(
            cmd.StatusMessage(kind=StatusKind.NACK, value=record.seq)
        )
        self.stats.nacks_sent += 1
        self.stats.nack_bytes += nbytes
        if self._m_nacks is not None:
            self._m_nacks.inc()
            self._m_nack_bytes.inc(nbytes)

    def _resolve(self, seq: int) -> bool:
        record = self._pending.pop(seq, None)
        if record is not None:
            latency = self.sim.now - record.suspected_at
            self.stats.recovery_latency_total += latency
            self.stats.recovery_latency_max = max(
                self.stats.recovery_latency_max, latency
            )
            self.stats.recoveries_timed += 1
            if self._m_latency is not None:
                self._m_latency.observe(latency)
        return self._tracker.resolve(seq)

    # -- status exchange ------------------------------------------------------
    def _on_sync(self, highest_seq: int) -> None:
        """Server announced its highest sent seq: account for the tail."""
        self.stats.syncs_received += 1
        self._scan_holes(highest_seq, inclusive=True)
        now = self.sim.now
        for record in list(self._pending.values()):
            if (
                record.nacked_at is not None
                and now - record.nacked_at >= self.nack_timeout
            ):
                self._send_nack(record)
        self.send_command(
            cmd.StatusMessage(kind=StatusKind.FRONTIER, value=self.frontier)
        )
        self.stats.frontiers_sent += 1

    def _on_recovered(self, seq: int) -> None:
        """Server superseded ``seq`` with a fresh re-encode (or refresh)."""
        self.stats.recoveries_confirmed += 1
        self.console.codec.drop_partial(seq)
        self._resolve(seq)

    # -- send path (console -> server) ----------------------------------------
    def send_command(self, command: cmd.Command) -> int:
        """Send a command to the server; returns its wire bytes."""
        seq = self.tx.next_seq()
        trace_id = None
        if self._trace is not None:
            trace_id = self._trace.message_sent(
                (self.address, self.server_address, seq), command, self.sim.now
            )
        nbytes = 0
        burst = []
        for datagram in self.tx.fragment(command, seq=seq):
            nbytes += datagram.wire_nbytes
            burst.append(
                Packet.acquire(
                    self.address,
                    self.server_address,
                    datagram.wire_nbytes,
                    payload=datagram,
                    flow=CONTROL_FLOW,
                    trace_id=trace_id,
                )
            )
        self.network.send_burst(burst)
        return nbytes
