"""Exception hierarchy for the repro package.

Every error raised by this package derives from :class:`ReproError`, so
callers embedding the library can catch one type.  Subsystems raise the
narrower types below; nothing in this package raises bare ``Exception``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ProtocolError(ReproError):
    """Malformed or inconsistent SLIM protocol data."""


class WireFormatError(ProtocolError):
    """Bytes on the wire could not be parsed as a SLIM message."""


class GeometryError(ReproError):
    """A rectangle or region argument is out of bounds or degenerate."""


class SessionError(ReproError):
    """Authentication or session-management failure."""


class SimulationError(ReproError):
    """The discrete-event simulator was used inconsistently."""


class SchedulerError(SimulationError):
    """Invalid configuration or state in the CPU scheduler simulation."""


class BandwidthError(ReproError):
    """Invalid bandwidth request or allocation state."""


class WorkloadError(ReproError):
    """A workload model was configured with invalid parameters."""
