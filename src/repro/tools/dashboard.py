"""Render saved time-series telemetry as a terminal dashboard.

``python -m repro.tools.dashboard RUN.jsonl`` draws the windowed series
a run exported via ``--timeseries`` as sparklines (one row per series,
density-ramp glyphs), or as a heatstrip with ``--heat``.  The same file
can be schema-checked (``--validate``), evaluated against the
interactivity SLOs (``--slo``, optionally loading a saved SLO report
with ``--slo-file``), or exported as Chrome ``trace_event`` counter
JSON (``--chrome-trace``, load in about:tracing / Perfetto alongside
the causal traces from ``--trace-events``).

``--live EXPERIMENT...`` skips the file entirely and delegates to
``python -m repro.experiments --dashboard`` — the updating multi-line
mini-dashboard while the run executes.

Examples::

    python -m repro.tools.dashboard ts.jsonl
    python -m repro.tools.dashboard ts.jsonl --metric 'net.yardstick.*'
    python -m repro.tools.dashboard ts.jsonl --heat --runs cellular/
    python -m repro.tools.dashboard ts.jsonl --slo
    python -m repro.tools.dashboard ts.jsonl --chrome-trace trace.json
    python -m repro.tools.dashboard --live wan_matrix
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import sys
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.textplot import render_heatstrip, render_sparkline
from repro.errors import ReproError
from repro.obs.slo import SloEngine, validate_slo_records
from repro.obs.timeseries import (
    RunSeries,
    TimeSeriesCollection,
    validate_timeseries_records,
)

__all__ = ["main", "chrome_counter_events", "render_run"]

#: Per-family series kind used when rendering values.
_RENDER_KINDS = {
    "counter": "counter_rate",
    "gauge": "gauge",
    "histogram": "histogram_quantile",
}

#: Unit suffix per render kind, for the row captions.
_KIND_CAPTIONS = {
    "counter_rate": "/s",
    "gauge": "",
    "histogram_quantile": " p95",
}


def _selected_keys(
    run: RunSeries, patterns: Sequence[str]
) -> Dict[str, str]:
    keys = run.series_keys()
    if not patterns:
        return keys
    return {
        key: family
        for key, family in keys.items()
        if any(fnmatch.fnmatch(key, pattern) for pattern in patterns)
    }


def render_run(
    run: RunSeries,
    patterns: Sequence[str] = (),
    width: int = 60,
    heat: bool = False,
    quantile: float = 0.95,
) -> str:
    """One run's series as labelled sparklines (or one heatstrip)."""
    keys = _selected_keys(run, patterns)
    title = (
        f"run {run.label!r}: {len(run.windows)} windows, "
        f"{run.span:g} sim-s at {run.window:g}s"
        + (f" (coalesced x{run.coalesce_count})" if run.coalesce_count else "")
    )
    lines = [title]
    if not keys:
        lines.append("  (no series match)")
        return "\n".join(lines)
    if heat:
        rows = {}
        for key in sorted(keys):
            points = run.values(key, _RENDER_KINDS[keys[key]], quantile)
            if points:
                rows[key] = [value for _t, value in points]
        lines.append(render_heatstrip(rows, width=width))
        return "\n".join(lines)
    label_width = min(max(len(key) for key in keys), 48)
    for key in sorted(keys):
        kind = _RENDER_KINDS[keys[key]]
        points = run.values(key, kind, quantile)
        if not points:
            continue
        values = [value for _t, value in points]
        label = key if len(key) <= 48 else key[:45] + "..."
        lines.append(
            f"  {label:<{label_width}} "
            f"|{render_sparkline(values, width)}| "
            f"last {values[-1]:.4g}{_KIND_CAPTIONS[kind]} "
            f"max {max(values):.4g}"
        )
    return "\n".join(lines)


def chrome_counter_events(
    collection: TimeSeriesCollection, quantile: float = 0.95
) -> Dict[str, Any]:
    """Chrome ``trace_event`` counter ("C") events for every series.

    Each run becomes a process (pid = run index) so Perfetto groups its
    counters together; timestamps are window starts in microseconds.
    """
    events: List[Dict[str, Any]] = []
    for pid, run in enumerate(collection.runs):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": run.label},
            }
        )
        for key, family in sorted(run.series_keys().items()):
            kind = _RENDER_KINDS[family]
            for t0, value in run.values(key, kind, quantile):
                events.append(
                    {
                        "name": key,
                        "ph": "C",
                        "pid": pid,
                        "tid": 0,
                        "ts": t0 * 1e6,
                        "args": {kind: value},
                    }
                )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _load_records(path: str) -> List[Dict[str, Any]]:
    with open(path, "r", encoding="utf-8") as fh:
        return [json.loads(line) for line in fh if line.strip()]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.dashboard",
        description="Render time-series telemetry as a terminal dashboard.",
    )
    parser.add_argument(
        "series",
        nargs="?",
        help="time-series JSONL written by --timeseries",
    )
    parser.add_argument(
        "--metric",
        action="append",
        default=[],
        metavar="GLOB",
        help="only series matching this pattern (repeatable)",
    )
    parser.add_argument(
        "--runs",
        metavar="SUBSTR",
        help="only runs whose label contains this substring",
    )
    parser.add_argument(
        "--width", type=int, default=60, help="sparkline width (default 60)"
    )
    parser.add_argument(
        "--quantile",
        type=float,
        default=0.95,
        help="quantile for histogram series (default 0.95)",
    )
    parser.add_argument(
        "--heat",
        action="store_true",
        help="render each run as one shared-scale heatstrip",
    )
    parser.add_argument(
        "--validate",
        action="store_true",
        help="schema-check the file (and --slo-file) instead of rendering",
    )
    parser.add_argument(
        "--slo",
        action="store_true",
        help="evaluate the interactivity SLOs and print the report",
    )
    parser.add_argument(
        "--slo-file",
        metavar="PATH",
        help="a saved SLO JSONL to validate alongside the series",
    )
    parser.add_argument(
        "--slo-out",
        metavar="PATH",
        help="with --slo: also write the report as JSONL",
    )
    parser.add_argument(
        "--chrome-trace",
        metavar="PATH",
        help="export Chrome trace_event counter JSON",
    )
    parser.add_argument(
        "--live",
        nargs=argparse.REMAINDER,
        metavar="EXPERIMENT",
        help="run experiments with the live dashboard instead of reading "
        "a file (forwards to python -m repro.experiments --dashboard)",
    )
    args = parser.parse_args(argv)

    if args.live is not None:
        from repro.experiments.__main__ import main as experiments_main

        return experiments_main(["--dashboard", *args.live])

    if args.series is None:
        parser.error("a series file is required (or use --live)")

    try:
        records = _load_records(args.series)
        validate_timeseries_records(records)
        if args.slo_file is not None:
            validate_slo_records(_load_records(args.slo_file))
    except (OSError, ValueError, ReproError) as exc:
        print(f"invalid input: {exc}", file=sys.stderr)
        return 2
    if args.validate:
        suffix = " (+ SLO report)" if args.slo_file else ""
        print(f"{args.series}: {len(records)} records ok{suffix}")
        return 0

    collection = TimeSeriesCollection.from_records(records)
    runs = [
        run
        for run in collection.runs
        if args.runs is None or args.runs in run.label
    ]
    if not runs:
        print("no runs match", file=sys.stderr)
        return 1
    for run in runs:
        print(render_run(
            run,
            patterns=args.metric,
            width=args.width,
            heat=args.heat,
            quantile=args.quantile,
        ))
        print()

    if args.chrome_trace is not None:
        subset = TimeSeriesCollection(window=collection.window)
        for run in runs:
            subset.adopt_run(run)
        document = chrome_counter_events(subset, quantile=args.quantile)
        with open(args.chrome_trace, "w", encoding="utf-8") as fh:
            json.dump(document, fh)
        print(
            f"{len(document['traceEvents'])} counter events "
            f"written to {args.chrome_trace}"
        )

    if args.slo:
        report = SloEngine().evaluate(runs)
        print(report.render())
        if args.slo_out is not None:
            count = report.write_jsonl(args.slo_out)
            print(f"{count} SLO records written to {args.slo_out}")
        return 0 if report.compliant else 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
