"""Unit tests for color-space conversion and scaling."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.framebuffer.yuv import (
    CSCS_LADDER,
    bilinear_scale,
    cscs_wire_bytes,
    degrade_for_depth,
    psnr,
    rgb_to_yuv,
    subsample_yuv,
    yuv_to_rgb,
)


class TestRgbYuv:
    def test_roundtrip_is_near_lossless(self, rng):
        rgb = rng.integers(0, 256, size=(16, 16, 3), dtype=np.uint8)
        back = yuv_to_rgb(rgb_to_yuv(rgb))
        assert np.abs(rgb.astype(int) - back.astype(int)).max() <= 1

    def test_gray_has_no_chroma(self):
        gray = np.full((4, 4, 3), 128, dtype=np.uint8)
        yuv = rgb_to_yuv(gray)
        assert np.abs(yuv[:, :, 1]).max() < 1e-9
        assert np.abs(yuv[:, :, 2]).max() < 1e-9
        assert np.allclose(yuv[:, :, 0], 128)

    def test_luma_weights_order(self):
        # Green contributes most to luma, blue least (BT.601).
        red = np.zeros((1, 1, 3), dtype=np.uint8); red[..., 0] = 255
        green = np.zeros((1, 1, 3), dtype=np.uint8); green[..., 1] = 255
        blue = np.zeros((1, 1, 3), dtype=np.uint8); blue[..., 2] = 255
        y_r = rgb_to_yuv(red)[0, 0, 0]
        y_g = rgb_to_yuv(green)[0, 0, 0]
        y_b = rgb_to_yuv(blue)[0, 0, 0]
        assert y_g > y_r > y_b

    def test_bad_shape_rejected(self):
        with pytest.raises(GeometryError):
            rgb_to_yuv(np.zeros((4, 4), dtype=np.uint8))
        with pytest.raises(GeometryError):
            yuv_to_rgb(np.zeros((4, 4, 2)))


class TestSubsample:
    def test_preserves_luma_exactly(self, rng):
        yuv = rgb_to_yuv(rng.integers(0, 256, size=(8, 8, 3), dtype=np.uint8))
        out = subsample_yuv(yuv, 2, 2)
        assert np.array_equal(out[:, :, 0], yuv[:, :, 0])

    def test_uniform_chroma_unchanged(self):
        yuv = np.zeros((8, 8, 3))
        yuv[:, :, 1] = 42.0
        out = subsample_yuv(yuv, 2, 2)
        assert np.allclose(out[:, :, 1], 42.0)

    def test_blocks_are_averaged(self):
        yuv = np.zeros((2, 2, 3))
        yuv[:, :, 1] = [[0.0, 100.0], [0.0, 100.0]]
        out = subsample_yuv(yuv, 2, 2)
        assert np.allclose(out[:, :, 1], 50.0)

    def test_invalid_factor(self):
        with pytest.raises(GeometryError):
            subsample_yuv(np.zeros((4, 4, 3)), 0, 1)


class TestLadder:
    def test_bit_budgets_are_exact(self):
        for bpp, ((fx, fy), luma_bits, chroma_bits) in CSCS_LADDER.items():
            assert luma_bits + 2 * chroma_bits / (fx * fy) == bpp

    def test_wire_bytes_match_budget_for_aligned_sizes(self):
        for bpp in CSCS_LADDER:
            assert cscs_wire_bytes(64, 64, bpp) == 64 * 64 * bpp // 8

    def test_wire_bytes_rejects_unknown_depth(self):
        with pytest.raises(GeometryError):
            cscs_wire_bytes(8, 8, 7)

    def test_degrade_monotone_quality(self, rng):
        rgb = rng.integers(0, 256, size=(32, 32, 3), dtype=np.uint8)
        yuv = rgb_to_yuv(rgb)
        errors = []
        for bpp in (16, 12, 8, 5):
            degraded = degrade_for_depth(yuv, bpp)
            err = float(np.abs(yuv_to_rgb(degraded).astype(int) - rgb.astype(int)).mean())
            errors.append(err)
        assert errors == sorted(errors)  # lower depth -> more error


class TestBilinearScale:
    def test_identity(self, rng):
        img = rng.integers(0, 256, size=(10, 12, 3), dtype=np.uint8)
        out = bilinear_scale(img, 12, 10)
        assert np.array_equal(out, img)

    def test_upscale_shape(self, rng):
        img = rng.integers(0, 256, size=(10, 12, 3), dtype=np.uint8)
        assert bilinear_scale(img, 24, 20).shape == (20, 24, 3)

    def test_uniform_stays_uniform(self):
        img = np.full((8, 8, 3), 77, dtype=np.uint8)
        assert (bilinear_scale(img, 16, 16) == 77).all()

    def test_grayscale_2d_supported(self):
        img = np.full((4, 4), 9, dtype=np.uint8)
        out = bilinear_scale(img, 8, 8)
        assert out.shape == (8, 8)
        assert (out == 9).all()

    def test_gradient_interpolates_between_extremes(self):
        img = np.zeros((1, 2, 3), dtype=np.uint8)
        img[0, 1] = 255
        out = bilinear_scale(img, 4, 1)
        assert out[0, 0, 0] <= out[0, 1, 0] <= out[0, 2, 0] <= out[0, 3, 0]

    def test_invalid_output_size(self):
        with pytest.raises(GeometryError):
            bilinear_scale(np.zeros((4, 4, 3)), 0, 4)


class TestPsnr:
    def test_identical_is_infinite(self):
        img = np.full((4, 4, 3), 5, dtype=np.uint8)
        assert psnr(img, img.copy()) == float("inf")

    def test_more_noise_lower_psnr(self, rng):
        img = rng.integers(0, 256, size=(16, 16, 3), dtype=np.uint8)
        small = np.clip(img.astype(int) + rng.integers(-2, 3, img.shape), 0, 255).astype(np.uint8)
        large = np.clip(img.astype(int) + rng.integers(-40, 41, img.shape), 0, 255).astype(np.uint8)
        assert psnr(img, small) > psnr(img, large)

    def test_shape_mismatch(self):
        with pytest.raises(GeometryError):
            psnr(np.zeros((2, 2, 3), np.uint8), np.zeros((3, 3, 3), np.uint8))
