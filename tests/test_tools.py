"""Tests for the command-line tools (replay, capacity)."""

import json

import pytest

from repro.analysis.traces import save_traces
from repro.errors import ReproError
from repro.tools.capacity import main as capacity_main
from repro.tools.capacity import parse_users, plan
from repro.tools.replay import main as replay_main
from repro.tools.replay import parse_bandwidth, replay
from repro.workloads.apps import PIM
from repro.workloads.mixes import WorkgroupMix
from repro.workloads.session import run_user_study


@pytest.fixture(scope="module")
def trace_file(tmp_path_factory):
    traces, _profiles = run_user_study(PIM, n_users=2, duration=120.0, seed=8)
    path = tmp_path_factory.mktemp("traces") / "pim.jsonl"
    save_traces(traces, path)
    return path


class TestParseBandwidth:
    def test_units(self):
        assert parse_bandwidth("56Kbps") == 56e3
        assert parse_bandwidth("1.5Mbps") == 1.5e6
        assert parse_bandwidth("1Gbps") == 1e9
        assert parse_bandwidth("2e6") == 2e6
        assert parse_bandwidth("10m") == 10e6

    def test_invalid(self):
        with pytest.raises(ReproError):
            parse_bandwidth("fast")
        with pytest.raises(ReproError):
            parse_bandwidth("-5Mbps")
        with pytest.raises(ReproError):
            parse_bandwidth("0")


class TestReplayTool:
    def test_fast_link_is_clean(self, trace_file):
        summary = replay(trace_file, 10e6)
        assert summary["traces"] == 2
        assert summary["verdict"] == "indistinguishable"

    def test_slow_link_is_painful(self, trace_file):
        summary = replay(trace_file, 28.8e3)  # a 28.8k modem
        assert summary["pct_above_150ms"] > 20
        assert summary["verdict"] != "indistinguishable"

    def test_monotone_in_bandwidth(self, trace_file):
        fast = replay(trace_file, 10e6)["median_added_ms"]
        slow = replay(trace_file, 128e3)["median_added_ms"]
        assert slow >= fast

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            replay(tmp_path / "nope.jsonl", 1e6)

    def test_cli_text(self, trace_file, capsys):
        assert replay_main([str(trace_file), "--bandwidth", "2Mbps"]) == 0
        out = capsys.readouterr().out
        assert "verdict:" in out

    def test_cli_json(self, trace_file, capsys):
        assert replay_main([str(trace_file), "--bandwidth", "2Mbps", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["bandwidth_bps"] == 2e6


class TestCapacityTool:
    def test_parse_users(self):
        mix = parse_users(["Netscape=3", "PIM=5"])
        assert mix.total_users == 8

    def test_parse_users_errors(self):
        with pytest.raises(ReproError):
            parse_users(["Netscape"])
        with pytest.raises(ReproError):
            parse_users(["Netscape=three"])
        with pytest.raises(ReproError):
            parse_users(["Minesweeper=2"])

    def test_plan_sizing_only(self):
        mix = WorkgroupMix("x", (("PIM", 30),))
        report = plan(mix)
        assert report["demand_ref_cpus"] == pytest.approx(0.9)
        assert report["suggested_cpus"] == 1
        assert "yardstick_added_ms" not in report

    def test_plan_with_simulation(self):
        mix = WorkgroupMix("x", (("PIM", 6),))
        report = plan(mix, simulate=True, duration=60.0, sim_seconds=20.0)
        assert report["interactive_ok"]
        assert report["display_traffic_mbps"] < 5

    def test_cli(self, capsys):
        assert capacity_main(["--users", "Netscape=4", "PIM=4"]) == 0
        out = capsys.readouterr().out
        assert "suggested sizing" in out
