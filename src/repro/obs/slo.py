"""Declarative interactivity SLOs over windowed telemetry series.

The paper's usability argument is a handful of thresholds: keystroke
echo must keep up with the ~150 ms human cadence (the yardstick's think
time, Section 6.2), video must hold its frame rate (Section 6.3), loss
recovery must finish before the user notices, and the bandwidth tiers
from the adversity work must not park a session at thumbnail quality.
This module makes those thresholds first-class: an :class:`SloSpec`
names a windowed series (as produced by :mod:`repro.obs.timeseries`),
a comparison, and an *error budget* — the fraction of windows allowed
to violate before the SLO as a whole is broken — and the
:class:`SloEngine` evaluates every spec against every run, tracking
budget burn (violations consumed / violations allowed; > 1 means the
budget is blown).

Alongside per-spec results the engine emits structured **health
events** — latency spikes (contiguous violating windows merged into one
event), loss bursts, tier thrash, and queue buildup — each annotated
with the trace ids that were in flight during the offending windows, so
an event links straight back to the causal traces of the affected
updates.

JSONL schema (one object per line)::

    {"type": "slo_header", "version": 1, "specs": [...]}
    {"type": "slo", "run": "cellular/Netscape/static",
     "spec": "keystroke_echo", "series": "net.yardstick.rtt_seconds",
     "windows": 11, "violations": 9, "budget": 0.05, "burn": 16.4,
     "compliant": false, "worst": {"t0": 4.0, "value": 1.72}}
    {"type": "event", "kind": "latency_spike", "run": "...",
     "series": "...", "t0": 2.0, "t1": 11.0, "value": 1.72,
     "threshold": 0.15, "trace_ids": [17, 19]}
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, IO, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import ReproError
from repro.obs.timeseries import (
    RunSeries,
    TimeSeriesCollection,
    window_value,
)

__all__ = [
    "SLO_SCHEMA_VERSION",
    "SloSpec",
    "SloResult",
    "HealthEvent",
    "SloReport",
    "SloEngine",
    "INTERACTIVITY_SLOS",
    "KEYSTROKE_ECHO",
    "VIDEO_FRAME_RATE",
    "LOSS_RECOVERY",
    "TIER_RESIDENCY",
    "validate_slo_records",
]

SLO_SCHEMA_VERSION = 1

#: Comparison operators a spec may use (value OP threshold passes).
_OPS = {
    "<=": lambda value, threshold: value <= threshold,
    ">=": lambda value, threshold: value >= threshold,
    "<": lambda value, threshold: value < threshold,
    ">": lambda value, threshold: value > threshold,
}

#: Packets lost/dropped in one window before it counts as a loss burst.
LOSS_BURST_MIN = 5

#: Tier transitions in one window before it counts as thrash.
TIER_THRASH_MIN = 2

#: Consecutive rising windows before a queue series counts as buildup.
QUEUE_BUILDUP_RUN = 3


@dataclass(frozen=True)
class SloSpec:
    """One interactivity objective over a windowed series.

    Attributes:
        name: Identifier (``keystroke_echo``).
        metric: Series name to match; a key matches when it equals the
            metric or is the metric plus a label suffix (``{...}``).
        kind: How a window value is extracted — ``histogram_quantile``,
            ``histogram_mean``, ``gauge``, ``counter_rate``, or
            ``counter_delta`` (see :func:`repro.obs.timeseries.window_value`).
        threshold: The objective; a window passes when
            ``value op threshold`` holds.
        op: Comparison direction (default ``<=``).
        quantile: Quantile for ``histogram_quantile`` kinds.
        budget: Error budget — the fraction of evaluated windows allowed
            to violate while the SLO still counts as met.
        event: Health-event kind emitted for violating windows.
        description: One line for reports.
    """

    name: str
    metric: str
    kind: str
    threshold: float
    op: str = "<="
    quantile: float = 0.95
    budget: float = 0.05
    event: str = ""
    description: str = ""

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ReproError(f"unknown SLO op {self.op!r}")
        if not 0.0 <= self.budget <= 1.0:
            raise ReproError("SLO budget must be a fraction in [0, 1]")

    def matches(self, series_key: str) -> bool:
        return series_key == self.metric or series_key.startswith(
            self.metric + "{"
        )

    def passes(self, value: float) -> bool:
        return _OPS[self.op](value, self.threshold)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "metric": self.metric,
            "kind": self.kind,
            "threshold": self.threshold,
            "op": self.op,
            "quantile": self.quantile,
            "budget": self.budget,
            "description": self.description,
        }


#: Keystroke echo: the network yardstick's round trip (64 B up, 1200 B
#: down) must sit within the paper's 150 ms human think-time cadence at
#: p95 per window (Section 6.2 / Figure 11).
KEYSTROKE_ECHO = SloSpec(
    name="keystroke_echo",
    metric="net.yardstick.rtt_seconds",
    kind="histogram_quantile",
    quantile=0.95,
    threshold=0.150,
    op="<=",
    budget=0.05,
    event="latency_spike",
    description="yardstick RTT p95 within the 150 ms interactive cadence",
)

#: Video holds a watchable rate: >= 20 fps per window (the paper's
#: quarter-size clips run at full 24 fps on the LAN, Section 6.3).
VIDEO_FRAME_RATE = SloSpec(
    name="video_frame_rate",
    metric="video.frames_sent",
    kind="counter_rate",
    threshold=20.0,
    op=">=",
    budget=0.10,
    event="frame_rate_drop",
    description="video stream sustains >= 20 frames/s per window",
)

#: Post-loss recovery completes within two think-time cadences — the
#: NACK round trip plus re-encode must not outlast the user's attention.
LOSS_RECOVERY = SloSpec(
    name="loss_recovery",
    metric="transport.channel.recovery_latency_seconds",
    kind="histogram_quantile",
    quantile=0.95,
    threshold=0.300,
    op="<=",
    budget=0.05,
    event="slow_recovery",
    description="loss recovery p95 within 300 ms (two 150 ms cadences)",
)

#: Bandwidth-tier residency: the adaptive allocator may degrade, but a
#: session parked at thumbnail (tier level 2) in more than a quarter of
#: windows has lost the graceful-degradation argument.
TIER_RESIDENCY = SloSpec(
    name="tier_residency",
    metric="bw.tier.level",
    kind="gauge",
    threshold=1.0,
    op="<=",
    budget=0.25,
    event="tier_floor",
    description="sessions stay at full/progressive fidelity "
    "(tier level <= 1) in >= 75% of windows",
)

#: The paper-grounded default set.
INTERACTIVITY_SLOS: Tuple[SloSpec, ...] = (
    KEYSTROKE_ECHO,
    VIDEO_FRAME_RATE,
    LOSS_RECOVERY,
    TIER_RESIDENCY,
)


@dataclass
class SloResult:
    """One (run, spec, series) evaluation."""

    run: str
    spec: str
    series: str
    windows: int
    violations: int
    budget: float
    burn: float
    compliant: bool
    worst: Optional[Dict[str, float]] = None

    @property
    def ok_windows(self) -> int:
        return self.windows - self.violations

    def to_dict(self) -> Dict[str, Any]:
        out = {
            "type": "slo",
            "run": self.run,
            "spec": self.spec,
            "series": self.series,
            "windows": self.windows,
            "violations": self.violations,
            "budget": self.budget,
            "burn": round(self.burn, 3) if self.burn != float("inf") else "inf",
            "compliant": self.compliant,
        }
        if self.worst is not None:
            out["worst"] = self.worst
        return out


@dataclass
class HealthEvent:
    """One structured health event, trace-annotated."""

    kind: str
    run: str
    series: str
    t0: float
    t1: float
    value: float
    threshold: float
    trace_ids: List[int] = field(default_factory=list)
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": "event",
            "kind": self.kind,
            "run": self.run,
            "series": self.series,
            "t0": self.t0,
            "t1": self.t1,
            "value": self.value,
            "threshold": self.threshold,
            "trace_ids": list(self.trace_ids),
            "detail": self.detail,
        }


@dataclass
class SloReport:
    """Everything one evaluation produced."""

    specs: List[SloSpec]
    results: List[SloResult] = field(default_factory=list)
    events: List[HealthEvent] = field(default_factory=list)

    # -- lookups -----------------------------------------------------------
    def for_run(self, run_label: str) -> List[SloResult]:
        return [r for r in self.results if r.run == run_label]

    def compliance(
        self, run_label: str, spec_name: str
    ) -> Optional[SloResult]:
        """The worst (highest-burn) matching result, or None when the
        run produced no data for the spec."""
        matching = [
            r
            for r in self.results
            if r.run == run_label and r.spec == spec_name
        ]
        if not matching:
            return None
        return max(matching, key=lambda r: r.burn)

    @property
    def compliant(self) -> bool:
        return all(r.compliant for r in self.results)

    # -- serialization -----------------------------------------------------
    def to_records(self) -> List[Dict[str, Any]]:
        records: List[Dict[str, Any]] = [
            {
                "type": "slo_header",
                "version": SLO_SCHEMA_VERSION,
                "specs": [spec.to_dict() for spec in self.specs],
            }
        ]
        records.extend(result.to_dict() for result in self.results)
        records.extend(event.to_dict() for event in self.events)
        return records

    def write_jsonl(self, path_or_file: Union[str, IO[str]]) -> int:
        records = self.to_records()
        if hasattr(path_or_file, "write"):
            for record in records:
                path_or_file.write(json.dumps(record) + "\n")
        else:
            with open(path_or_file, "w", encoding="utf-8") as fh:
                for record in records:
                    fh.write(json.dumps(record) + "\n")
        return len(records)

    # -- rendering ---------------------------------------------------------
    def render(self, title: str = "interactivity SLO report") -> str:
        lines = [title, "=" * len(title)]
        if not self.results:
            lines.append("  (no matching series — nothing to evaluate)")
        width = max((len(r.run) for r in self.results), default=8)
        for result in self.results:
            burn = (
                "inf" if result.burn == float("inf") else f"{result.burn:.2f}"
            )
            status = "ok  " if result.compliant else "VIOL"
            worst = ""
            if result.worst is not None and not result.compliant:
                worst = (
                    f"  worst {result.worst['value']:.4g}"
                    f" @ t={result.worst['t0']:g}s"
                )
            lines.append(
                f"  {status} {result.run:<{width}} {result.spec:<16} "
                f"{result.ok_windows}/{result.windows} windows ok, "
                f"budget burn {burn}{worst}"
            )
        if self.events:
            lines.append("")
            lines.append(f"health events ({len(self.events)}):")
            for event in self.events:
                traces = (
                    f" traces {event.trace_ids}" if event.trace_ids else ""
                )
                lines.append(
                    f"  {event.kind:<16} {event.run} "
                    f"[{event.t0:g}s..{event.t1:g}s] {event.series} "
                    f"= {event.value:.4g} (threshold {event.threshold:g})"
                    f"{traces}"
                )
        return "\n".join(lines)


class SloEngine:
    """Evaluates a spec set against windowed runs."""

    def __init__(self, specs: Sequence[SloSpec] = INTERACTIVITY_SLOS) -> None:
        self.specs = list(specs)

    def evaluate(
        self,
        source: Union[TimeSeriesCollection, Iterable[RunSeries]],
    ) -> SloReport:
        runs = (
            source.runs
            if isinstance(source, TimeSeriesCollection)
            else list(source)
        )
        report = SloReport(specs=self.specs)
        for run in runs:
            keys = run.series_keys()
            for spec in self.specs:
                for key in keys:
                    if spec.matches(key):
                        self._evaluate_series(report, run, spec, key)
            self._detect_loss_bursts(report, run, keys)
            self._detect_tier_thrash(report, run, keys)
            self._detect_queue_buildup(report, run, keys)
        return report

    # -- per-spec evaluation -----------------------------------------------
    def _evaluate_series(
        self, report: SloReport, run: RunSeries, spec: SloSpec, key: str
    ) -> None:
        windows = 0
        violations = 0
        worst: Optional[Dict[str, float]] = None
        open_event: Optional[HealthEvent] = None
        for record in run.windows:
            value = window_value(record, key, spec.kind, spec.quantile)
            if value is None:
                continue
            windows += 1
            if spec.passes(value):
                open_event = None
                continue
            violations += 1
            if worst is None or _more_violating(spec, value, worst["value"]):
                worst = {"t0": record["t0"], "value": value}
            trace_ids = list(record.get("trace_ids", ()))
            if (
                open_event is not None
                and record["t0"] <= open_event.t1 + 1e-9
            ):
                # Contiguous violation: extend the open event.
                open_event.t1 = record["t1"]
                if _more_violating(spec, value, open_event.value):
                    open_event.value = value
                open_event.trace_ids = sorted(
                    set(open_event.trace_ids) | set(trace_ids)
                )
            else:
                open_event = HealthEvent(
                    kind=spec.event or f"{spec.name}_violation",
                    run=run.label,
                    series=key,
                    t0=record["t0"],
                    t1=record["t1"],
                    value=value,
                    threshold=spec.threshold,
                    trace_ids=trace_ids,
                    detail=spec.description,
                )
                report.events.append(open_event)
        if windows == 0:
            return
        allowed = spec.budget * windows
        if allowed > 0:
            burn = violations / allowed
        else:
            burn = float("inf") if violations else 0.0
        report.results.append(
            SloResult(
                run=run.label,
                spec=spec.name,
                series=key,
                windows=windows,
                violations=violations,
                budget=spec.budget,
                burn=burn,
                compliant=violations <= allowed,
                worst=worst,
            )
        )

    # -- built-in detectors (independent of the spec set) ------------------
    def _detect_loss_bursts(
        self, report: SloReport, run: RunSeries, keys: Dict[str, str]
    ) -> None:
        loss_keys = [
            key
            for key, family in keys.items()
            if family == "counter"
            and (
                key.startswith("net.link.packets_lost")
                or key.startswith("net.link.packets_dropped")
            )
        ]
        for key in loss_keys:
            for record in run.windows:
                delta = record.get("counters", {}).get(key, 0)
                if delta >= LOSS_BURST_MIN:
                    report.events.append(
                        HealthEvent(
                            kind="loss_burst",
                            run=run.label,
                            series=key,
                            t0=record["t0"],
                            t1=record["t1"],
                            value=float(delta),
                            threshold=float(LOSS_BURST_MIN),
                            trace_ids=list(record.get("trace_ids", ())),
                            detail=f"{delta} packets lost/dropped in one window",
                        )
                    )

    def _detect_tier_thrash(
        self, report: SloReport, run: RunSeries, keys: Dict[str, str]
    ) -> None:
        thrash_keys = [
            key
            for key, family in keys.items()
            if family == "counter" and key.startswith("bw.tier.transitions")
        ]
        if not thrash_keys:
            return
        for record in run.windows:
            counters = record.get("counters", {})
            total = sum(counters.get(key, 0) for key in thrash_keys)
            if total >= TIER_THRASH_MIN:
                report.events.append(
                    HealthEvent(
                        kind="tier_thrash",
                        run=run.label,
                        series="bw.tier.transitions",
                        t0=record["t0"],
                        t1=record["t1"],
                        value=float(total),
                        threshold=float(TIER_THRASH_MIN),
                        trace_ids=list(record.get("trace_ids", ())),
                        detail=f"{total} tier transitions in one window",
                    )
                )

    def _detect_queue_buildup(
        self, report: SloReport, run: RunSeries, keys: Dict[str, str]
    ) -> None:
        for key, family in keys.items():
            if "queue" not in key:
                continue
            kind = "gauge" if family == "gauge" else "histogram_mean"
            values = run.values(key, kind)
            rising = 1
            for index in range(1, len(values)):
                if values[index][1] > values[index - 1][1]:
                    rising += 1
                    if rising == QUEUE_BUILDUP_RUN and values[index][1] > 0:
                        start = values[index - QUEUE_BUILDUP_RUN + 1]
                        report.events.append(
                            HealthEvent(
                                kind="queue_buildup",
                                run=run.label,
                                series=key,
                                t0=start[0],
                                t1=values[index][0],
                                value=values[index][1],
                                threshold=start[1],
                                detail=(
                                    f"monotonic rise over "
                                    f"{QUEUE_BUILDUP_RUN} windows"
                                ),
                            )
                        )
                else:
                    rising = 1


def _more_violating(spec: SloSpec, value: float, reference: float) -> bool:
    """Is ``value`` a worse violation than ``reference`` for this spec?"""
    if spec.op in ("<=", "<"):
        return value > reference
    return value < reference


def validate_slo_records(records: Sequence[Dict[str, Any]]) -> None:
    """Schema-check an SLO record stream (CI smoke / ``--validate``)."""
    if not records:
        raise ReproError("empty SLO stream")
    header = records[0]
    if header.get("type") != "slo_header":
        raise ReproError("first record must be the slo header")
    if header.get("version") != SLO_SCHEMA_VERSION:
        raise ReproError(f"unsupported SLO schema version {header.get('version')!r}")
    if not isinstance(header.get("specs"), list):
        raise ReproError("slo header must carry a spec list")
    for index, record in enumerate(records[1:], start=1):
        rtype = record.get("type")
        if rtype == "slo":
            for key in ("run", "spec", "series", "windows", "violations"):
                if key not in record:
                    raise ReproError(f"record {index}: slo missing {key!r}")
            if not isinstance(record.get("compliant"), bool):
                raise ReproError(f"record {index}: slo missing compliant flag")
        elif rtype == "event":
            for key in ("kind", "run", "series", "t0", "t1", "trace_ids"):
                if key not in record:
                    raise ReproError(f"record {index}: event missing {key!r}")
        else:
            raise ReproError(f"record {index}: unknown record type {rtype!r}")
