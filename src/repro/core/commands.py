"""SLIM protocol message types (Table 1 of the paper).

Display commands may be *materialized* (carrying real pixel payloads as
numpy arrays) or *accounting-only* (payload omitted, sizes computed from
geometry).  Fidelity tests and the examples run materialized; the long
statistical simulations behind Figures 2-11 run accounting-only for speed.
Both modes report identical wire sizes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.errors import GeometryError, ProtocolError
from repro.framebuffer.regions import Rect
from repro.framebuffer.yuv import CSCS_LADDER


class Opcode(enum.IntEnum):
    """Wire opcodes for every SLIM message type."""

    SET = 1
    BITMAP = 2
    FILL = 3
    COPY = 4
    CSCS = 5
    KEY_EVENT = 16
    MOUSE_EVENT = 17
    AUDIO_DATA = 18
    STATUS = 19
    BANDWIDTH_REQUEST = 20
    BANDWIDTH_GRANT = 21


def bitmap_row_bytes(width: int) -> int:
    """Bytes per bitmap row: 1 bit/pixel, each row padded to a byte."""
    return (width + 7) // 8


def cscs_plane_bytes(width: int, height: int, bits_per_pixel: int) -> int:
    """Exact payload size of a CSCS command's packed YUV planes."""
    if bits_per_pixel not in CSCS_LADDER:
        raise GeometryError(f"unsupported CSCS depth {bits_per_pixel}")
    (fx, fy), luma_bits, chroma_bits = CSCS_LADDER[bits_per_pixel]
    cw = -(-width // fx)
    ch = -(-height // fy)
    luma = (width * height * luma_bits + 7) // 8
    chroma = 2 * ((cw * ch * chroma_bits + 7) // 8)
    return luma + chroma


@dataclass(frozen=True)
class Command:
    """Base class for all SLIM protocol messages."""

    @property
    def opcode(self) -> Opcode:
        raise NotImplementedError

    def payload_nbytes(self) -> int:
        """Size of this message's body on the wire (header excluded)."""
        raise NotImplementedError


@dataclass(frozen=True)
class DisplayCommand(Command):
    """Base class for the five display commands of Table 1."""

    rect: Rect

    def __post_init__(self) -> None:
        if self.rect.empty:
            raise GeometryError(f"display command on empty rect {self.rect}")

    @property
    def pixels(self) -> int:
        """Pixels this command touches on the console display."""
        return self.rect.area


# Fixed field sizes, in bytes, for rectangle coordinates on the wire:
# x, y, w, h each as uint16.
_RECT_BYTES = 8
_COLOR_BYTES = 3


@dataclass(frozen=True)
class SetCommand(DisplayCommand):
    """SET: literal pixel values for a rectangular region.

    The wire payload packs pixels as 3 bytes each ("pixels must be expanded
    from packed 3-byte format to 4-byte quantities" — Section 4.3).
    """

    data: Optional[np.ndarray] = None  # (h, w, 3) uint8 when materialized

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.data is not None and self.data.shape != (self.rect.h, self.rect.w, 3):
            raise GeometryError(
                f"SET data shape {self.data.shape} does not match {self.rect}"
            )

    @property
    def opcode(self) -> Opcode:
        return Opcode.SET

    def payload_nbytes(self) -> int:
        return _RECT_BYTES + self.rect.area * 3


@dataclass(frozen=True)
class BitmapCommand(DisplayCommand):
    """BITMAP: expand a 1-bit bitmap into foreground/background colors."""

    fg: Tuple[int, int, int] = (0, 0, 0)
    bg: Tuple[int, int, int] = (255, 255, 255)
    bitmap: Optional[np.ndarray] = None  # (h, w) bool when materialized

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.bitmap is not None and self.bitmap.shape != (self.rect.h, self.rect.w):
            raise GeometryError(
                f"BITMAP shape {self.bitmap.shape} does not match {self.rect}"
            )

    @property
    def opcode(self) -> Opcode:
        return Opcode.BITMAP

    def payload_nbytes(self) -> int:
        return (
            _RECT_BYTES
            + 2 * _COLOR_BYTES
            + bitmap_row_bytes(self.rect.w) * self.rect.h
        )


@dataclass(frozen=True)
class FillCommand(DisplayCommand):
    """FILL: flood a rectangular region with one pixel value."""

    color: Tuple[int, int, int] = (0, 0, 0)

    @property
    def opcode(self) -> Opcode:
        return Opcode.FILL

    def payload_nbytes(self) -> int:
        return _RECT_BYTES + _COLOR_BYTES


@dataclass(frozen=True)
class CopyCommand(DisplayCommand):
    """COPY: move a framebuffer region; ``rect`` is the destination."""

    src_x: int = 0
    src_y: int = 0

    @property
    def opcode(self) -> Opcode:
        return Opcode.COPY

    @property
    def src(self) -> Rect:
        return Rect(self.src_x, self.src_y, self.rect.w, self.rect.h)

    def payload_nbytes(self) -> int:
        return _RECT_BYTES + 4  # destination rect + source origin


@dataclass(frozen=True)
class CscsCommand(DisplayCommand):
    """CSCS: color-space convert YUV data, with optional bilinear scaling.

    ``rect`` is the destination (post-scaling) region on the display;
    ``src_w`` x ``src_h`` is the transmitted frame size.  When they differ
    the console scales bilinearly ("reducing the resolution of the media
    streams and scaling them locally on the SLIM console" — Section 7).
    """

    src_w: int = 0
    src_h: int = 0
    bits_per_pixel: int = 16
    payload: Optional[bytes] = None  # packed planes when materialized

    def __post_init__(self) -> None:
        super().__post_init__()
        src_w = self.src_w or self.rect.w
        src_h = self.src_h or self.rect.h
        object.__setattr__(self, "src_w", src_w)
        object.__setattr__(self, "src_h", src_h)
        if self.bits_per_pixel not in CSCS_LADDER:
            raise ProtocolError(f"unsupported CSCS depth {self.bits_per_pixel}")
        expected = cscs_plane_bytes(src_w, src_h, self.bits_per_pixel)
        if self.payload is not None and len(self.payload) != expected:
            raise ProtocolError(
                f"CSCS payload is {len(self.payload)} bytes, expected {expected}"
            )

    @property
    def opcode(self) -> Opcode:
        return Opcode.CSCS

    @property
    def scales(self) -> bool:
        """True when the console must bilinearly scale the frame."""
        return (self.src_w, self.src_h) != (self.rect.w, self.rect.h)

    @property
    def source_pixels(self) -> int:
        """Pixels actually transmitted (pre-scaling)."""
        return self.src_w * self.src_h

    def payload_nbytes(self) -> int:
        return (
            _RECT_BYTES
            + 4  # source size
            + 1  # bits per pixel
            + cscs_plane_bytes(self.src_w, self.src_h, self.bits_per_pixel)
        )


# --- non-display messages --------------------------------------------------


@dataclass(frozen=True)
class KeyEvent(Command):
    """A keyboard state change sent from console to server."""

    code: int
    pressed: bool

    @property
    def opcode(self) -> Opcode:
        return Opcode.KEY_EVENT

    def payload_nbytes(self) -> int:
        return 3  # code (2) + state (1)


@dataclass(frozen=True)
class MouseEvent(Command):
    """A mouse position/button report sent from console to server."""

    x: int
    y: int
    buttons: int = 0

    @property
    def opcode(self) -> Opcode:
        return Opcode.MOUSE_EVENT

    def payload_nbytes(self) -> int:
        return 5  # x (2) + y (2) + buttons (1)


@dataclass(frozen=True)
class AudioData(Command):
    """A block of audio samples (size-accounted only)."""

    nbytes: int

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ProtocolError("audio payload size must be non-negative")

    @property
    def opcode(self) -> Opcode:
        return Opcode.AUDIO_DATA

    def payload_nbytes(self) -> int:
        return self.nbytes


class StatusKind(enum.IntEnum):
    """``StatusMessage.kind`` values used by the display channel.

    The paper's periodic status exchange doubles as the loss-recovery
    control plane (Section 2.2): the server announces how far the
    display stream has progressed, the console NACKs what it is missing,
    and the server confirms each recovery so the console stops asking.
    """

    KEEPALIVE = 0
    #: Server -> console: ``value`` = highest display seq sent so far.
    SYNC = 1
    #: Console -> server: ``value`` = a display seq the console lacks.
    NACK = 2
    #: Server -> console: ``value`` = a NACKed seq now superseded by a
    #: fresh re-encode (or covered by a full refresh).
    RECOVERED = 3
    #: Console -> server: ``value`` = lowest display seq still missing
    #: (everything below it has been received or recovered).
    FRONTIER = 4


@dataclass(frozen=True)
class StatusMessage(Command):
    """Console <-> server status (liveness, flow control, geometry)."""

    kind: int = 0
    value: int = 0

    @property
    def opcode(self) -> Opcode:
        return Opcode.STATUS

    def payload_nbytes(self) -> int:
        return 6  # kind (2) + value (4)


@dataclass(frozen=True)
class BandwidthRequest(Command):
    """A sender's request for console bandwidth (Section 7)."""

    client_id: int
    bits_per_second: float

    @property
    def opcode(self) -> Opcode:
        return Opcode.BANDWIDTH_REQUEST

    def payload_nbytes(self) -> int:
        return 8  # client (4) + rate (4, in kbps on the wire)


@dataclass(frozen=True)
class BandwidthGrant(Command):
    """The console's response to a :class:`BandwidthRequest`."""

    client_id: int
    bits_per_second: float

    @property
    def opcode(self) -> Opcode:
        return Opcode.BANDWIDTH_GRANT

    def payload_nbytes(self) -> int:
        return 8


#: Convenient name for "any of the five Table 1 commands".
DISPLAY_OPCODES = (Opcode.SET, Opcode.BITMAP, Opcode.FILL, Opcode.COPY, Opcode.CSCS)
