"""Replay saved protocol traces over a simulated link.

The paper's scalability methodology (Section 5.4) as a reusable tool:
record a session once (``repro.analysis.traces.save_traces`` or a
``.slimcap`` wire capture), then ask "what would this feel like over X?"
for any bandwidth::

    python -m repro.tools.replay traces.jsonl --bandwidth 2Mbps
    python -m repro.tools.replay run.slimcap --bandwidth 384Kbps --json

Both input formats are detected automatically: JSON-lines session traces
(:func:`repro.analysis.traces.save_traces`) and ``.slimcap`` captures
(the experiment runner's ``--capture``), whose server->console display
messages are lifted into per-update records.

Bandwidth accepts ``56Kbps`` / ``1.5Mbps`` / plain bits-per-second.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path
from typing import Dict, List

from repro.analysis.cdf import Cdf
from repro.analysis.traces import SessionTrace, UpdateRecord, load_traces
from repro.core import commands as cmd
from repro.errors import ReproError
from repro.experiments.fig6 import trace_packet_windows, windowed_added_delays
from repro.experiments.scalability import classify
from repro.obs.capture import SlimcapReader, is_slimcap
from repro.units import MBPS


def parse_bandwidth(text: str) -> float:
    """Parse '56Kbps', '1.5Mbps', '2e6', ... into bits/second."""
    match = re.fullmatch(
        r"\s*([0-9.eE+-]+)\s*([kKmMgG]?)(?:bps)?\s*", text
    )
    if not match:
        raise ReproError(f"cannot parse bandwidth {text!r}")
    value = float(match.group(1))
    unit = match.group(2).lower()
    scale = {"": 1.0, "k": 1e3, "m": 1e6, "g": 1e9}[unit]
    result = value * scale
    if result <= 0:
        raise ReproError("bandwidth must be positive")
    return result


def session_from_capture(path: Path) -> SessionTrace:
    """Lift a ``.slimcap`` capture into a replayable session trace.

    Each server->console display message becomes one
    :class:`UpdateRecord` timestamped at its first fragment's capture
    time; status and input traffic is ignored (the replay models
    display-channel congestion only).
    """
    reader = SlimcapReader(path)
    updates: List[UpdateRecord] = []
    end = 0.0
    for message in reader.messages():
        end = max(end, message.time)
        if not isinstance(message.command, cmd.DisplayCommand):
            continue
        opcode = message.opcode
        updates.append(
            UpdateRecord(
                time=message.first_time,
                pixels=message.command.pixels,
                wire_bytes=message.wire_bytes,
                payload_bytes_by_opcode={
                    opcode: message.command.payload_nbytes()
                },
                pixels_by_opcode={opcode: message.command.pixels},
                commands_by_opcode={opcode: 1},
            )
        )
    if not updates:
        raise ReproError(f"no display messages in capture {path}")
    return SessionTrace(
        application="capture",
        user=Path(path).stem,
        duration=max(end, updates[-1].time) or 1.0,
        updates=updates,
    )


def replay(path: Path, rate_bps: float) -> Dict[str, object]:
    """Replay every trace in a file; returns the summary dict.

    Accepts JSON-lines session traces or a ``.slimcap`` wire capture
    (detected by magic).
    """
    if is_slimcap(path):
        traces = [session_from_capture(path)]
    else:
        traces = load_traces(path)
    if not traces:
        raise ReproError(f"no traces in {path}")
    delays: List[float] = []
    for trace in traces:
        nbytes, npackets = trace_packet_windows(trace, trace.duration)
        delays.extend(windowed_added_delays(nbytes, npackets, rate_bps))
    if not delays:
        raise ReproError("traces contain no display traffic")
    cdf = Cdf(delays)
    return {
        "traces": len(traces),
        "packets": cdf.n,
        "bandwidth_bps": rate_bps,
        "median_added_ms": cdf.median * 1000,
        "p90_added_ms": cdf.percentile(90) * 1000,
        "pct_above_50ms": cdf.fraction_above(0.050) * 100,
        "pct_above_150ms": cdf.fraction_above(0.150) * 100,
        "verdict": classify(cdf),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.replay",
        description="Replay saved SLIM traces over a simulated link.",
    )
    parser.add_argument(
        "traces", type=Path,
        help="JSON-lines trace file or .slimcap capture",
    )
    parser.add_argument(
        "--bandwidth", required=True, help="e.g. 56Kbps, 1.5Mbps, 1e7"
    )
    parser.add_argument("--json", action="store_true", help="machine output")
    args = parser.parse_args(argv)

    summary = replay(args.traces, parse_bandwidth(args.bandwidth))
    if args.json:
        print(json.dumps(summary, indent=2))
        return 0
    print(
        f"{summary['traces']} trace(s), {summary['packets']} packets at "
        f"{summary['bandwidth_bps'] / MBPS:g} Mbps"
    )
    print(
        f"added delay: median {summary['median_added_ms']:.2f} ms, "
        f"p90 {summary['p90_added_ms']:.1f} ms"
    )
    print(
        f"above perception: {summary['pct_above_50ms']:.1f}% > 50ms, "
        f"{summary['pct_above_150ms']:.1f}% > 150ms"
    )
    print(f"verdict: {summary['verdict']}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
