"""Unit tests for the sharded backend's plumbing.

The conformance suite (test_backend_conformance.py) covers the
SimulationBackend surface; this file exercises what is specific to
sharding — cross-shard boundary messages, the lookahead soundness
check, telemetry merging, and worker failure propagation.
"""

import pytest

from repro.errors import SimulationError
from repro.netsim.backend import LocalBackend
from repro.netsim.sharded import (
    COORDINATOR,
    LocalBus,
    ShardContext,
    ShardedBackend,
    merge_telemetry,
)


# -- shard programs (module-level so fork/pickle both work) -----------------


class EchoProgram:
    """Counts pings; replies to the sender; reports totals on collect."""

    def __init__(self, ctx):
        self.ctx = ctx
        self.received = []
        ctx.on_receive("ping", self.on_ping)
        ctx.on_receive("echo", self.on_echo)

    def on_ping(self, payload, arrival):
        self.received.append((payload, arrival))
        self.ctx.send("echo", payload, dst_shard=payload["reply_to"])

    def on_echo(self, payload, arrival):
        self.received.append((payload, arrival))

    def collect(self):
        return len(self.received)


def build_echo(ctx):
    return EchoProgram(ctx)


class RingProgram:
    """Forwards a token around the shard ring a fixed number of hops."""

    def __init__(self, ctx, hops):
        self.ctx = ctx
        self.hops = 0
        ctx.on_receive("token", self.on_token)
        if ctx.shard_index == 0:
            ctx.sim.schedule(0.0, lambda: ctx.send(
                "token", {"left": hops},
                dst_shard=1 % ctx.n_shards,
            ))

    def on_token(self, payload, arrival):
        self.hops += 1
        if payload["left"] > 1:
            self.ctx.send(
                "token",
                {"left": payload["left"] - 1},
                dst_shard=(self.ctx.shard_index + 1) % self.ctx.n_shards,
            )
        else:
            self.ctx.send("done", {"at": arrival})

    def collect(self):
        return self.hops


def build_ring(ctx, hops):
    return RingProgram(ctx, hops)


def build_crash(ctx):
    ctx.sim.schedule(0.1, lambda: 1 / 0)


class TelemetryProgram:
    def __init__(self, ctx):
        from repro.telemetry.metrics import MetricsRegistry, set_registry

        registry = MetricsRegistry()
        set_registry(registry)  # returns the *previous* registry
        registry.counter("shard.builds").inc()
        registry.gauge("shard.index").set(ctx.shard_index)
        for value in range(10):
            registry.histogram("shard.values").observe(value)


def build_telemetry(ctx):
    return TelemetryProgram(ctx)


# -- tests -------------------------------------------------------------------


class TestBoundaryMessaging:
    def test_coordinator_to_shard_and_back(self):
        with ShardedBackend(2, build=build_echo, lookahead=0.01) as backend:
            got = []
            backend.on_receive("echo", lambda p, t: got.append((p, t)))
            backend.send_to_shard(
                1, "ping", {"reply_to": COORDINATOR}, delay=0.01
            )
            backend.run()
            assert got == [({"reply_to": COORDINATOR}, pytest.approx(0.02))]

    def test_shard_to_shard_ring(self):
        hops = 7
        with ShardedBackend(
            3, build=build_ring, build_args=(hops,), lookahead=0.001
        ) as backend:
            done = []
            backend.on_receive("done", lambda p, t: done.append(p))
            backend.run()
            collection = backend.collect()
        assert done and done[0]["at"] == pytest.approx(hops * 0.001)
        assert sum(collection.results) == hops

    def test_collect_gathers_per_shard_results(self):
        with ShardedBackend(2, build=build_echo, lookahead=0.01) as backend:
            backend.send_to_shard(0, "ping", {"reply_to": 1}, delay=0.01)
            backend.run()
            collection = backend.collect()
        # Shard 0 got the ping, shard 1 got the echo.
        assert collection.results == [1, 1]


class TestLookaheadSoundness:
    def test_send_below_lookahead_rejected(self):
        sim = LocalBackend()
        bus = LocalBus(sim, lookahead=0.01)
        with pytest.raises(SimulationError):
            bus.send("x", None, delay=0.001)

    def test_coordinator_send_below_lookahead_rejected(self):
        with ShardedBackend(1, lookahead=0.01) as backend:
            with pytest.raises(SimulationError):
                backend.send_to_shard(0, "x", None, delay=0.001)

    def test_nonpositive_lookahead_rejected(self):
        with pytest.raises(SimulationError):
            ShardedBackend(1, lookahead=0.0)

    def test_unknown_destination_rejected(self):
        sim = LocalBackend()
        bus = LocalBus(sim, lookahead=0.01)
        with pytest.raises(SimulationError):
            bus.send("x", None, dst_shard=5)


class TestLocalBusParity:
    def test_local_bus_delivers_with_identical_delay(self):
        sim = LocalBackend()
        bus = LocalBus(sim, lookahead=0.25)
        got = []
        bus.on_receive("report", lambda p, t: got.append((p, t)))
        sim.schedule(1.0, lambda: bus.send("report", "hello"))
        sim.run()
        assert got == [("hello", 1.25)]

    def test_unhandled_port_raises(self):
        sim = LocalBackend()
        bus = LocalBus(sim, lookahead=0.25)
        bus.send("nobody-listens", None)
        with pytest.raises(SimulationError):
            sim.run()


class TestFailureAndLifecycle:
    def test_worker_exception_propagates_with_traceback(self):
        with ShardedBackend(2, build=build_crash) as backend:
            with pytest.raises(SimulationError, match="ZeroDivisionError"):
                backend.run()

    def test_close_is_idempotent_and_blocks_reuse(self):
        backend = ShardedBackend(1)
        backend.schedule(0.1, lambda: None)
        backend.run()
        backend.close()
        backend.close()
        with pytest.raises(SimulationError):
            backend.run()

    def test_shard_count_validated(self):
        with pytest.raises(SimulationError):
            ShardedBackend(0)


class TestTelemetryMerge:
    def test_counters_sum_gauges_last_write(self):
        with ShardedBackend(3, build=build_telemetry) as backend:
            backend.run()
            collection = backend.collect()
        merged = {e["name"]: e for e in collection.telemetry}
        assert merged["shard.builds"]["value"] == 3
        assert merged["shard.index"]["value"] == 2  # last shard wins
        histogram = merged["shard.values"]
        assert histogram["count"] == 30
        assert histogram["min"] == 0 and histogram["max"] == 9
        assert histogram["mean"] == pytest.approx(4.5)

    def test_merge_handles_disjoint_instruments(self):
        a = [{"kind": "counter", "name": "only.a", "labels": {}, "value": 1}]
        b = [{"kind": "counter", "name": "only.b", "labels": {}, "value": 2}]
        merged = {e["name"]: e["value"] for e in merge_telemetry([a, b])}
        assert merged == {"only.a": 1, "only.b": 2}

    def test_merge_empty(self):
        assert merge_telemetry([]) == []


class TestWindowJump:
    def test_idle_stretch_costs_one_barrier_not_millions(self):
        # A day-long gap between events must not tick lookahead-sized
        # windows: the window jumps to the next event directly.
        with ShardedBackend(2, lookahead=0.001) as backend:
            fired = []
            backend.schedule_at(0.0, lambda: fired.append("start"))
            backend.schedule_at(86_400.0, lambda: fired.append("end"))
            backend.run()
            assert fired == ["start", "end"]
            assert backend.now >= 86_400.0


class FidelityProgram:
    """Deterministic per-entity telemetry, partitioned by shard layout.

    Each entity's observations come from an RNG seeded by (seed, entity)
    — never by shard index — so the only thing that changes between a
    single-shard and a multi-shard run is which process holds which
    instruments, i.e. exactly what merge_telemetry must reconcile.
    """

    N_ENTITIES = 24
    SEED = 97
    BUCKETS = (0.1, 0.25, 0.5, 0.75, 1.0)

    def __init__(self, ctx):
        import numpy as np

        from repro.telemetry.metrics import MetricsRegistry, set_registry

        registry = MetricsRegistry()
        set_registry(registry)
        for entity in range(self.N_ENTITIES):
            if entity % ctx.n_shards != ctx.shard_index:
                continue
            rng = np.random.default_rng([self.SEED, entity])
            registry.counter("fid.events", entity=str(entity)).inc(entity + 1)
            total = registry.counter("fid.total")
            hist = registry.histogram("fid.latency", buckets=self.BUCKETS)
            for value in rng.uniform(0.0, 1.0, size=50):
                hist.observe(float(value))
                total.inc()


def build_fidelity(ctx):
    return FidelityProgram(ctx)


class SeriesProgram:
    """Advances sim time while bumping a per-shard counter, so the
    worker's time-series sampler has something to window."""

    def __init__(self, ctx):
        from repro.telemetry.metrics import MetricsRegistry, set_registry

        registry = MetricsRegistry()
        set_registry(registry)
        counter = registry.counter(
            "series.ticks", shard=str(ctx.shard_index)
        )
        for i in range(10):
            ctx.sim.schedule_at(0.5 * i, counter.inc)


def build_series(ctx):
    return SeriesProgram(ctx)


class TestMergeTelemetryFidelity:
    """Satellite: fixed-seed sharded vs single-shard telemetry.

    Counters and histogram count/min/max/buckets merge exactly; the
    histogram sum is exact up to float summation order (merging adds
    per-shard partial sums); quantiles are P2 estimates combined by
    count-weighted mean, documented as approximate — pinned here to a
    15% relative tolerance.
    """

    QUANTILE_RTOL = 0.15

    @staticmethod
    def merged(n_shards):
        with ShardedBackend(n_shards, build=build_fidelity) as backend:
            backend.run()
            collection = backend.collect()
        return {
            (e["name"], tuple(sorted(e["labels"].items()))): e
            for e in collection.telemetry
        }

    def test_sharded_matches_single_shard_within_tolerance(self):
        single = self.merged(1)
        sharded = self.merged(2)
        assert set(single) == set(sharded)

        for key in single:
            ours, theirs = single[key], sharded[key]
            if ours["kind"] == "counter":
                assert ours["value"] == theirs["value"], key

        key = ("fid.latency", ())
        ours, theirs = single[key], sharded[key]
        assert ours["count"] == theirs["count"] == (
            FidelityProgram.N_ENTITIES * 50
        )
        assert ours["min"] == theirs["min"]
        assert ours["max"] == theirs["max"]
        assert theirs["sum"] == pytest.approx(ours["sum"], rel=1e-12)
        assert ours["buckets"] == theirs["buckets"]
        for q, value in ours["quantiles"].items():
            assert theirs["quantiles"][q] == pytest.approx(
                value, rel=self.QUANTILE_RTOL
            ), f"quantile {q} drifted past the documented tolerance"

    def test_per_entity_counters_are_layout_invariant(self):
        single = self.merged(1)
        sharded = self.merged(3)
        for entity in range(FidelityProgram.N_ENTITIES):
            key = ("fid.events", (("entity", str(entity)),))
            assert single[key]["value"] == sharded[key]["value"] == entity + 1


class TestShardSeriesGathering:
    def test_series_gathered_and_merged_at_collect_barrier(self):
        from repro.obs.timeseries import (
            TimeSeriesCollection,
            collect_timeseries,
        )
        from repro.telemetry.metrics import MetricsRegistry

        collection = TimeSeriesCollection(
            window=1.0, registry=MetricsRegistry()
        )
        with collect_timeseries(collection):
            with ShardedBackend(
                2, build=build_series, lookahead=0.25
            ) as backend:
                backend.run()
                shard_collection = backend.collect()

        merged = shard_collection.series
        assert merged is not None
        assert [s is not None for s in shard_collection.series_per_shard] == (
            [True, True]
        )
        # 10 ticks per shard, summed window-by-window across shards.
        total = sum(
            delta
            for window in merged.windows
            for key, delta in window["counters"].items()
            if key.startswith("series.ticks")
        )
        assert total == 20
        # The merged timeline was adopted into the active collection, so
        # --timeseries/--slo see sharded runs like any other.
        assert merged in collection.runs

    def test_no_series_without_active_collection(self):
        with ShardedBackend(2, build=build_series, lookahead=0.25) as backend:
            backend.run()
            shard_collection = backend.collect()
        assert shard_collection.series is None
        assert shard_collection.series_per_shard == [None, None]
