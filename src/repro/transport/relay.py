"""Cross-shard display relay: SLIM wire traffic over boundary ports.

A sharded fleet puts the server's encode pipeline on one shard and
(consolidated) console populations on others; display commands that
cross that cut travel as wire bytes over a :class:`ShardContext`
boundary port rather than a simulated link.  This module is the small
transport shim that keeps the *observability* contract intact across
the cut:

* :class:`DisplayRelaySender` fragments a command with a
  :class:`WireCodec`, registers it with the causal tracer, and ships
  each datagram's bytes through ``ctx.send`` together with the trace's
  boundary-export context (``TraceCollector.boundary_export``), so the
  update's identity and birth timestamps survive the process hop.
* :class:`DisplayRelayReceiver` reassembles on the far side, adopts the
  trace (``boundary_adopt``) under the same global id, and enqueues the
  command on a :class:`Console` — whose decode/paint hooks then close
  the trace with a full telescoping stage partition, ``shard_transit``
  carrying the boundary-port hop.

The same pair built against a :class:`LocalBus` degenerates to plain
in-simulator delivery with identical delays, which is how the
sharded-vs-single-shard trace-continuity tests pin the stitching down.
"""

from __future__ import annotations

from typing import Optional

from repro.core.wire import Datagram, WireCodec
from repro.obs.context import ObsContext, get_obs

__all__ = ["DisplayRelaySender", "DisplayRelayReceiver"]


class DisplayRelaySender:
    """Serializes display commands onto a boundary port, traced.

    Args:
        ctx: The sending shard's context (or a :class:`LocalBus`).
        port: Boundary port name; the receiver registers the same one.
        dst_shard: Destination shard index.
        src, dst: Endpoint addresses stamped on trace keys and captured
            frames (one logical flow per sender/receiver pair).
        delay: Boundary propagation delay; defaults to the lookahead.
        obs: Observability context; defaults to the process-global one.
    """

    def __init__(
        self,
        ctx,
        port: str,
        dst_shard: int = 0,
        src: str = "relay:server",
        dst: str = "relay:console",
        delay: Optional[float] = None,
        obs: Optional[ObsContext] = None,
    ) -> None:
        obs = obs if obs is not None else get_obs()
        self._trace = obs.tracer if obs is not None else None
        self._capture = obs.capture if obs is not None else None
        self.ctx = ctx
        self.port = port
        self.dst_shard = dst_shard
        self.src = src
        self.dst = dst
        self.delay = delay
        self.codec = WireCodec()
        self.messages_sent = 0
        self.bytes_sent = 0

    def send(self, command) -> int:
        """Fragment and ship one command; returns its wire seq."""
        now = self.ctx.sim.now
        datagrams = self.codec.fragment(command)
        seq = datagrams[0].seq
        key = (self.src, self.dst, seq)
        export = None
        if self._trace is not None:
            self._trace.message_sent(key, command, now)
            export = self._trace.boundary_export(
                key, self.ctx.shard_index, now
            )
        for datagram in datagrams:
            if self._capture is not None:
                self._capture.frame(now, self.src, self.dst, datagram)
            self.ctx.send(
                self.port,
                datagram.to_bytes(),
                delay=self.delay,
                dst_shard=self.dst_shard,
                trace=export,
            )
            self.bytes_sent += datagram.wire_nbytes
        self.messages_sent += 1
        return seq


class DisplayRelayReceiver:
    """Reassembles relayed commands and feeds a console, adopting the
    sender's causal trace so the stage partition stays telescoping."""

    def __init__(
        self,
        ctx,
        port: str,
        console,
        obs: Optional[ObsContext] = None,
    ) -> None:
        obs = obs if obs is not None else get_obs()
        self._trace = obs.tracer if obs is not None else None
        self.ctx = ctx
        self.console = console
        self.codec = WireCodec()
        self.messages_received = 0
        ctx.on_receive(port, self._receive)

    def _receive(self, payload, arrival: float) -> None:
        datagram = Datagram.from_bytes(payload)
        result = self.codec.accept(datagram)
        if result is None:
            return
        command, _seq = result
        context = self.ctx.current_trace
        if self._trace is not None and isinstance(context, dict):
            self._trace.boundary_adopt(context, command, arrival)
        self.messages_received += 1
        self.console.enqueue(command)
