"""Backend conformance: one behavioural contract, every backend.

Parametrized over ``LocalBackend``, ``ShardedBackend(1)``, and
``ShardedBackend(4)``: whatever engine an experiment runs on, the
scheduling surface behaves identically — ordering, negative-delay
clamping, monitor callbacks, and run_until/stop semantics.

Sharded backends schedule coordinator work on the parent's control-plane
engine, so these tests run the exact code path experiments use without
needing a shard program.
"""

import pytest

from repro.errors import SimulationError
from repro.netsim.backend import LocalBackend, SimulationBackend
from repro.netsim.sharded import ShardedBackend

NEGATIVE_DELAY_EPSILON = LocalBackend.NEGATIVE_DELAY_EPSILON

BACKENDS = ["local", "sharded1", "sharded4"]


@pytest.fixture(params=BACKENDS)
def backend(request):
    if request.param == "local":
        yield LocalBackend()
        return
    shards = 1 if request.param == "sharded1" else 4
    with ShardedBackend(shards) as sharded:
        yield sharded


class TestProtocol:
    def test_satisfies_protocol(self, backend):
        assert isinstance(backend, SimulationBackend)

    def test_clock_starts_at_zero(self, backend):
        assert backend.now == 0.0
        assert backend.pending == 0
        assert backend.peek_next_time() is None


class TestScheduleOrdering:
    def test_fifo_among_equal_timestamps(self, backend):
        fired = []
        for index in range(8):
            backend.schedule(0.5, lambda index=index: fired.append(index))
        backend.run()
        assert fired == list(range(8))

    def test_timestamp_order_wins(self, backend):
        fired = []
        backend.schedule(0.3, lambda: fired.append("late"))
        backend.schedule(0.1, lambda: fired.append("early"))
        backend.schedule_at(0.2, lambda: fired.append("middle"))
        backend.run()
        assert fired == ["early", "middle", "late"]

    def test_nested_scheduling_from_callbacks(self, backend):
        fired = []

        def outer():
            fired.append("outer")
            backend.schedule(0.1, lambda: fired.append("inner"))

        backend.schedule(0.1, outer)
        backend.run()
        assert fired == ["outer", "inner"]
        assert backend.now >= 0.2


class TestDelayClamping:
    def test_epsilon_negative_delay_clamps_to_now(self, backend):
        fired = []
        backend.schedule(-NEGATIVE_DELAY_EPSILON / 2, lambda: fired.append(1))
        backend.run()
        assert fired == [1]

    def test_truly_negative_delay_raises(self, backend):
        with pytest.raises(SimulationError):
            backend.schedule(-1.0, lambda: None)

    def test_schedule_at_past_raises(self, backend):
        backend.schedule(0.5, lambda: None)
        backend.run()
        with pytest.raises(SimulationError):
            backend.schedule_at(backend.now - 1.0, lambda: None)


class TestMonitor:
    def test_monitor_fires_every_n_events(self, backend):
        ticks = []

        def monitor(sim):
            ticks.append(sim.events_processed)

        monitor.every = 10
        backend.set_monitor(monitor)
        for index in range(35):
            backend.schedule(0.001 * (index + 1), lambda: None)
        backend.run()
        assert len(ticks) == 3
        backend.set_monitor(None)

    def test_monitor_sees_backend_clock(self, backend):
        seen = []

        def monitor(sim):
            seen.append(sim.now)

        monitor.every = 1
        backend.set_monitor(monitor)
        backend.schedule(0.25, lambda: None)
        backend.run()
        assert seen and seen[0] == pytest.approx(0.25)


class TestRunUntilAndStop:
    def test_run_until_executes_only_due_events(self, backend):
        fired = []
        backend.schedule(0.1, lambda: fired.append("a"))
        backend.schedule(0.9, lambda: fired.append("b"))
        backend.run_until(0.5)
        assert fired == ["a"]
        assert backend.now == pytest.approx(0.5)
        assert backend.pending == 1
        backend.run_until(1.0)
        assert fired == ["a", "b"]

    def test_run_until_is_resumable(self, backend):
        fired = []
        for step in range(1, 6):
            backend.schedule_at(step * 0.1, lambda step=step: fired.append(step))
        backend.run_until(0.25)
        assert fired == [1, 2]
        backend.run_until(0.55)
        assert fired == [1, 2, 3, 4, 5]

    def test_stop_halts_without_teleporting_clock(self, backend):
        fired = []

        def stopper():
            fired.append("stop")
            backend.stop()

        backend.schedule(0.1, stopper)
        backend.schedule(5.0, lambda: fired.append("never"))
        backend.run_until(10.0)
        assert fired == ["stop"]
        # The clock halts where stop() fired, not at the deadline...
        assert backend.now < 5.0
        # ...and the stop flag does not poison the next run.
        backend.run_until(10.0)
        assert fired == ["stop", "never"]

    def test_run_max_events_bounds_control_plane(self, backend):
        fired = []
        for index in range(20):
            backend.schedule(0.001 * (index + 1), lambda: fired.append(1))
        backend.run(max_events=5)
        assert len(fired) >= 5
        assert len(fired) < 20
        backend.run()
        assert len(fired) == 20

    def test_events_processed_accumulates(self, backend):
        backend.schedule(0.1, lambda: None)
        backend.schedule(0.2, lambda: None)
        backend.run()
        assert backend.events_processed >= 2
