"""Resource monitoring of simulated production installations (Section 6.3)."""

from repro.monitor.casestudy import (
    SiteModel,
    DayProfile,
    UNIVERSITY_LAB,
    ENGINEERING_GROUP,
    simulate_day,
)

__all__ = [
    "SiteModel",
    "DayProfile",
    "UNIVERSITY_LAB",
    "ENGINEERING_GROUP",
    "simulate_day",
]
