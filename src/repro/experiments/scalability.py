"""Section 5.4: how far down the SLIM protocol scales.

The paper pairs the Figure 6 measurements with an experiential
classification — at 10 Mbps "users could not distinguish any difference",
at 1-2 Mbps "performance was quite good, with only occasional hiccups",
and at 56-128 Kbps "extremely poor ... the experience is painful".  This
experiment turns those verdicts into thresholds on the added-delay CDFs
(using the Shneiderman 50-150 ms perception window the paper cites) and
classifies each bandwidth level.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.cdf import Cdf
from repro.experiments.fig6 import added_delay_cdfs
from repro.experiments.runner import (
    ExperimentConfig,
    ExperimentResult,
    experiment,
)
from repro.units import PERCEPTION_HIGH, PERCEPTION_LOW


def classify(cdf: Cdf) -> str:
    """Map an added-delay CDF onto the paper's experiential verdicts.

    * **indistinguishable** — delays essentially never reach the 50 ms
      perception floor;
    * **acceptable** — delays are frequently noticeable but rarely blow
      through the 150 ms ceiling ("occasional hiccups");
    * **painful** — a large fraction of packets exceed the ceiling.
    """
    if cdf.fraction_above(PERCEPTION_LOW) < 0.02:
        return "indistinguishable"
    if cdf.fraction_above(PERCEPTION_HIGH) < 0.25:
        return "acceptable"
    return "painful"


#: The paper's verdict per bandwidth level (Section 5.4 prose).
PAPER_VERDICTS = {
    "10Mbps": "indistinguishable",
    "2Mbps": "acceptable",
    "1Mbps": "acceptable",
    "128Kbps": "painful",
    "56Kbps": "painful",
}


def verdicts(n_users: int = 4) -> Dict[str, str]:
    """Classify every Figure 6 bandwidth level."""
    return {
        name: classify(cdf)
        for name, cdf in added_delay_cdfs(n_users=n_users).items()
    }


@experiment("scalability", title="Section 5.4: protocol scalability to lower bandwidths", section="5.4")
def run(config: ExperimentConfig) -> ExperimentResult:
    n_users = config.n_users
    cdfs = added_delay_cdfs(n_users=n_users or 4)
    rows = []
    for name, cdf in cdfs.items():
        rows.append(
            {
                "bandwidth": name,
                "verdict": classify(cdf),
                "paper": PAPER_VERDICTS[name],
                ">50ms %": round(cdf.fraction_above(PERCEPTION_LOW) * 100, 1),
                ">150ms %": round(cdf.fraction_above(PERCEPTION_HIGH) * 100, 1),
            }
        )
    return ExperimentResult(
        experiment_id="scalability",
        title="Section 5.4: protocol scalability to lower bandwidths",
        rows=rows,
        notes=[
            "verdicts from the Shneiderman 50-150ms perception window the "
            "paper cites",
            "1Mbps sits right at the acceptable/painful boundary: the "
            "paper calls 1-2Mbps 'quite good, with only occasional "
            "hiccups when large regions had to be displayed', and it is "
            "exactly those large regions that blow the 150ms ceiling here",
        ],
    )

