"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.framebuffer import FrameBuffer, Painter


@pytest.fixture
def rng():
    """A deterministic random generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def fb():
    """A small framebuffer most protocol tests share."""
    return FrameBuffer(128, 96)


@pytest.fixture
def painter(fb):
    return Painter(fb)


@pytest.fixture
def big_fb():
    """A display-sized framebuffer for geometry-heavy tests."""
    return FrameBuffer(1280, 1024)
