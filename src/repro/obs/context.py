"""The process-global observability context.

Mirrors the telemetry registry pattern (:mod:`repro.telemetry.metrics`)
with one important difference: the default is ``None``, not a null
object.  Observability is *per-event* work — every packet generates
trace events, every frame is written to disk — so the disabled path must
be a single ``is None`` check with no attribute chain and no shared
no-op objects.  Components resolve the context once, at construction::

    obs = obs if obs is not None else get_obs()
    self._trace = obs.tracer if obs is not None else None

and their hot paths guard with ``if self._trace is not None``.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.obs.capture import SlimcapWriter
    from repro.obs.causal import TraceCollector

__all__ = ["ObsContext", "get_obs", "set_obs", "use_obs"]


@dataclass
class ObsContext:
    """What the observability layer is collecting for the current run.

    Attributes:
        tracer: Causal update tracer; ``None`` disables trace events.
        capture: Wire-capture writer; ``None`` disables frame capture.
    """

    tracer: Optional["TraceCollector"] = None
    capture: Optional["SlimcapWriter"] = None


_current: Optional[ObsContext] = None


def get_obs() -> Optional[ObsContext]:
    """The installed observability context, or None (the default)."""
    return _current


def set_obs(context: Optional[ObsContext]) -> Optional[ObsContext]:
    """Install a context (or None to disable); returns the previous one."""
    global _current
    previous = _current
    _current = context
    return previous


@contextmanager
def use_obs(context: ObsContext):
    """Temporarily install an observability context.

    Components built inside the block pick the context up by default;
    components built outside keep whatever they resolved at
    construction.
    """
    previous = set_obs(context)
    try:
        yield context
    finally:
        set_obs(previous)
