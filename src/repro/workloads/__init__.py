"""Benchmark application workload models (Table 2).

The paper's user studies had 50 people drive Photoshop, Netscape, Frame
Maker, and PIM tools for ten-minute sessions on Sun Ray 1 prototypes.
This package replaces the humans and the closed-source applications with
stochastic session generators whose input-rate distributions, update-size
distributions, and content mixes are calibrated to the landmark
statistics the paper reports — and which drive the *real* protocol
pipeline (encoder, wire format, cost models) end to end.

Multimedia workloads (MPEG-II, NTSC video, Quake) live in
:mod:`repro.workloads.video` and :mod:`repro.workloads.quake`.
"""

from repro.workloads.input_model import InputModel, InputEvent
from repro.workloads.display_model import DisplayModel, UpdateArchetype
from repro.workloads.apps import (
    AppProfile,
    BENCHMARK_APPS,
    PHOTOSHOP,
    NETSCAPE,
    FRAMEMAKER,
    PIM,
)
from repro.workloads.session import UserSession, ResourceProfile, run_user_study

__all__ = [
    "InputModel",
    "InputEvent",
    "DisplayModel",
    "UpdateArchetype",
    "AppProfile",
    "BENCHMARK_APPS",
    "PHOTOSHOP",
    "NETSCAPE",
    "FRAMEMAKER",
    "PIM",
    "UserSession",
    "ResourceProfile",
    "run_user_study",
]
