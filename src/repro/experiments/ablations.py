"""Ablations of the design choices DESIGN.md calls out.

These go beyond the paper's figures to quantify *why* the design is the
way it is:

* **Command-selection ablation** — disable FILL / BITMAP / COPY
  detection one at a time and re-encode the same workload; shows each
  command's contribution to the Figure 4 compression.
* **CSCS depth ladder** — bandwidth vs console decode rate vs quality
  (PSNR) across 16/12/8/6/5 bpp.
* **Bandwidth allocator on/off** — a video stream plus an interactive
  session on one console: with the allocator the interactive sender
  retains its requested share; without it the video absorbs everything.
* **Push vs pull (VNC-style)** — the same paint stream delivered by
  server-push SLIM vs client-poll VNC: bytes and added display latency.
* **Scheduler quantum** — sensitivity of the Figure 9 yardstick to the
  time-slice length.
* **MTU sensitivity** — per-datagram overhead vs fragment size.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.core.commands import CscsCommand
from repro.core.costs import ConsoleCostModel
from repro.core.bandwidth import BandwidthAllocator
from repro.core.encoder import EncoderConfig, SlimEncoder
from repro.core.wire import message_wire_nbytes
from repro.core import cscs_codec
from repro.experiments.runner import (
    ExperimentConfig,
    ExperimentResult,
    experiment,
)
from repro.experiments import userstudy
from repro.framebuffer.framebuffer import FrameBuffer
from repro.framebuffer.painter import Painter, synth_video_frame
from repro.framebuffer.regions import Rect
from repro.framebuffer.yuv import psnr
from repro.units import ETHERNET_100, MBPS
from repro.workloads.apps import NETSCAPE
from repro.xproto.baseline import VncServer


# --- 1. command-selection ablation -------------------------------------------


def encoder_ablation(
    n_events: int = 400, seed: int = 5
) -> List[Tuple[str, float]]:
    """(config name, mean bytes per update) over a Netscape-like stream."""
    rng = np.random.default_rng(seed)
    display = NETSCAPE.display_model()
    updates = [display.sample_update(rng, seed=i) for i in range(n_events)]
    configs = {
        "full": EncoderConfig(),
        "no FILL": EncoderConfig(use_fill=False),
        "no BITMAP": EncoderConfig(use_bitmap=False),
        "no COPY": EncoderConfig(use_copy=False),
        "SET only": EncoderConfig(use_fill=False, use_bitmap=False, use_copy=False),
    }
    rows = []
    for name, config in configs.items():
        encoder = SlimEncoder(config=config, materialize=False)
        total = 0
        for ops in updates:
            for command in encoder.encode_ops(ops):
                total += message_wire_nbytes(command)
        rows.append((name, total / n_events))
    return rows


# --- 2. CSCS depth ladder ------------------------------------------------------


def cscs_depth_ablation(
    width: int = 320, height: int = 240, seed: int = 9
) -> List[Dict[str, float]]:
    """Bandwidth, console rate, and PSNR for each CSCS depth."""
    frame = synth_video_frame(Rect(0, 0, width, height), seed)
    cost_model = ConsoleCostModel()
    rows = []
    for bpp in (16, 12, 8, 6, 5):
        payload = cscs_codec.encode_frame(frame, bpp)
        decoded = cscs_codec.decode_frame(payload, width, height, bpp)
        command = CscsCommand(
            rect=Rect(0, 0, width, height), bits_per_pixel=bpp, payload=payload
        )
        fps_console = 1.0 / cost_model.service_time(command)
        nbytes = message_wire_nbytes(command)
        rows.append(
            {
                "bpp": bpp,
                "KB/frame": nbytes / 1000,
                "Mbps @24fps": nbytes * 8 * 24 / MBPS,
                "console max fps": fps_console,
                "PSNR dB": psnr(frame, decoded),
            }
        )
    return rows


# --- 3. bandwidth allocator -----------------------------------------------------


def allocator_ablation() -> Dict[str, Dict[str, float]]:
    """Video + interactive senders with and without the allocator."""
    interactive_request = 2 * MBPS
    video_request = 120 * MBPS  # more than the link can carry
    with_allocator = BandwidthAllocator(ETHERNET_100)
    with_allocator.request(1, interactive_request)
    with_allocator.request(2, video_request)
    granted_interactive = with_allocator.grant_for(1).granted_bps
    granted_video = with_allocator.grant_for(2).granted_bps
    # Without the allocator, both senders blast and share the link in
    # proportion to their offered load.
    total = interactive_request + video_request
    free_for_all_interactive = ETHERNET_100 * interactive_request / total
    free_for_all_video = ETHERNET_100 * video_request / total
    return {
        "with allocator": {
            "interactive Mbps": granted_interactive / MBPS,
            "video Mbps": granted_video / MBPS,
        },
        "without": {
            "interactive Mbps": free_for_all_interactive / MBPS,
            "video Mbps": free_for_all_video / MBPS,
        },
    }


# --- 4. push vs pull -------------------------------------------------------------


def push_pull_ablation(
    n_updates: int = 60,
    poll_hz: float = 10.0,
    seed: int = 13,
    display_w: int = 640,
    display_h: int = 480,
) -> Dict[str, Dict[str, float]]:
    """SLIM push vs VNC-style pull on the same paint stream.

    Updates arrive at random times; SLIM transmits immediately while the
    VNC viewer polls at ``poll_hz``.  Reports mean bytes per update and
    mean added display latency (time pixels wait for the next poll).
    """
    rng = np.random.default_rng(seed)
    display = NETSCAPE.display_model()
    display.display_w, display.display_h = display_w, display_h
    display.display_area = display_w * display_h

    fb = FrameBuffer(display_w, display_h)
    painter = Painter(fb)
    encoder = SlimEncoder(materialize=True)
    vnc = VncServer(fb)

    slim_bytes = 0
    vnc_bytes = 0
    push_latency: List[float] = []
    pull_latency: List[float] = []
    poll_interval = 1.0 / poll_hz
    time = 0.0
    for index in range(n_updates):
        time += float(rng.exponential(0.4))
        ops = display.sample_update(rng, seed=index)
        for op in ops:
            painter.apply(op)
        fb.drain_damage()
        for command in encoder.encode_ops(ops, fb):
            slim_bytes += message_wire_nbytes(command)
        # SLIM pushes as soon as the server paints: only wire time.
        push_latency.append(0.0)
        # The VNC viewer sees the update at the next poll tick.
        next_poll = (int(time / poll_interval) + 1) * poll_interval
        pull_latency.append(next_poll - time)
        _rects, nbytes = vnc.poll()
        vnc_bytes += nbytes
    return {
        "SLIM push": {
            "bytes/update": slim_bytes / n_updates,
            "added latency ms": float(np.mean(push_latency)) * 1000,
        },
        "VNC pull": {
            "bytes/update": vnc_bytes / n_updates,
            "added latency ms": float(np.mean(pull_latency)) * 1000,
        },
    }


# --- 5. scheduler quantum ----------------------------------------------------------


def quantum_ablation(
    quanta=(0.002, 0.010, 0.050, 0.200),
    n_users: int = 12,
    sim_seconds: float = 60.0,
) -> List[Tuple[float, float]]:
    """(quantum, yardstick added latency) for a fixed Netscape load."""
    from repro.experiments.fig9 import yardstick_latency

    _traces, profiles = userstudy.get_study(NETSCAPE)
    return [
        (
            q,
            yardstick_latency(
                profiles, n_users, sim_seconds=sim_seconds, quantum=q
            ),
        )
        for q in quanta
    ]


# --- 6. priority scheduling (Section 9 future work) ------------------------------


def priority_scheduler_ablation(
    n_users: int = 16, sim_seconds: float = 60.0
) -> Dict[str, float]:
    """Yardstick added latency: round-robin vs interactive-priority.

    Runs the Figure 9 workload at an oversubscribed point with both
    schedulers.  The priority scheduler realises the paper's future-work
    goal — interactive guarantees under load — at near-zero cost to the
    background users.
    """
    from repro.netsim.backend import LocalBackend
    from repro.server.priority import PriorityScheduler
    from repro.server.scheduler import (
        PeriodicTask,
        ProfilePlaybackTask,
        Scheduler,
    )

    _traces, profiles = userstudy.get_study(NETSCAPE)
    results: Dict[str, float] = {}
    for label, factory in (
        ("round-robin", Scheduler),
        ("priority", PriorityScheduler),
    ):
        sim = LocalBackend()
        scheduler = factory(sim, num_cpus=1, quantum=0.010, memory_mb=4096.0)
        yardstick = PeriodicTask(burst=0.030, think=0.150, warmup=5.0)
        yardstick.interactive = True
        scheduler.spawn(yardstick)
        rng = np.random.default_rng(21)
        for index in range(n_users):
            profile = profiles[index % len(profiles)]
            scheduler.spawn(
                ProfilePlaybackTask(
                    name=f"user{index}",
                    profile_utilization=profile.cpu,
                    interval=profile.interval,
                    burst=NETSCAPE.typical_burst_seconds(),
                    memory_mb=profile.memory_mb,
                    rng=np.random.default_rng(rng.integers(0, 2**63)),
                )
            )
        sim.run_until(sim_seconds)
        results[label] = yardstick.mean_added_latency()
    return results


# --- 7. MTU sensitivity --------------------------------------------------------------


def mtu_ablation(update_nbytes: int = 50_000) -> List[Tuple[int, float]]:
    """(mtu, overhead fraction) for a fixed-size display update."""
    rows = []
    for mtu in (256, 512, 1500, 9000):
        payload_per = mtu - 28 - 8
        datagrams = -(-update_nbytes // payload_per)
        overhead = datagrams * (28 + 8)
        rows.append((mtu, overhead / (update_nbytes + overhead)))
    return rows


@experiment("ablations", title="Design-choice ablations", section="design")
def run(config: ExperimentConfig) -> ExperimentResult:
    rows = []
    for name, nbytes in encoder_ablation():
        rows.append({"ablation": "encoder", "case": name, "value": f"{nbytes / 1000:.1f} KB/update"})
    for entry in cscs_depth_ablation():
        rows.append(
            {
                "ablation": "cscs-depth",
                "case": f"{entry['bpp']} bpp",
                "value": (
                    f"{entry['KB/frame']:.0f} KB/frame, "
                    f"{entry['console max fps']:.0f} fps max, "
                    f"{entry['PSNR dB']:.1f} dB"
                ),
            }
        )
    for name, values in allocator_ablation().items():
        rows.append(
            {
                "ablation": "bw-allocator",
                "case": name,
                "value": (
                    f"interactive {values['interactive Mbps']:.1f} / "
                    f"video {values['video Mbps']:.1f} Mbps"
                ),
            }
        )
    for name, values in push_pull_ablation().items():
        rows.append(
            {
                "ablation": "push-vs-pull",
                "case": name,
                "value": (
                    f"{values['bytes/update'] / 1000:.1f} KB/update, "
                    f"+{values['added latency ms']:.0f} ms latency"
                ),
            }
        )
    for quantum, latency in quantum_ablation():
        rows.append(
            {
                "ablation": "quantum",
                "case": f"{quantum * 1000:.0f} ms",
                "value": f"{latency * 1000:.1f} ms added",
            }
        )
    for name, latency in priority_scheduler_ablation().items():
        rows.append(
            {
                "ablation": "scheduler-class",
                "case": name,
                "value": f"{latency * 1000:.1f} ms added (16 Netscape users)",
            }
        )
    for mtu, overhead in mtu_ablation():
        rows.append(
            {
                "ablation": "mtu",
                "case": f"{mtu} B",
                "value": f"{overhead * 100:.1f}% header overhead",
            }
        )
    return ExperimentResult(
        experiment_id="ablations",
        title="Design-choice ablations",
        rows=rows,
        notes=[
            "encoder rows quantify each display command's contribution; "
            "'SET only' approximates the raw-pixel baseline",
        ],
    )

