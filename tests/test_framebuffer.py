"""Unit tests for the framebuffer."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.framebuffer import FrameBuffer, Rect


class TestConstruction:
    def test_shape_and_fill(self):
        fb = FrameBuffer(10, 5, fill=7)
        assert fb.pixels.shape == (5, 10, 3)
        assert (fb.pixels == 7).all()

    def test_bounds(self):
        assert FrameBuffer(10, 5).bounds == Rect(0, 0, 10, 5)

    def test_invalid_size(self):
        with pytest.raises(GeometryError):
            FrameBuffer(0, 5)
        with pytest.raises(GeometryError):
            FrameBuffer(5, -1)


class TestFill:
    def test_fills_exact_region(self, fb):
        fb.fill(Rect(2, 3, 4, 5), (10, 20, 30))
        block = fb.pixels[3:8, 2:6]
        assert (block == (10, 20, 30)).all()
        assert (fb.pixels[0, 0] == 0).all()

    def test_clips_to_bounds(self, fb):
        clipped = fb.fill(Rect(120, 90, 20, 20), (1, 1, 1))
        assert clipped == Rect(120, 90, 8, 6)

    def test_outside_is_noop(self, fb):
        clipped = fb.fill(Rect(500, 500, 5, 5), (9, 9, 9))
        assert clipped.empty
        assert (fb.pixels == 0).all()

    def test_records_damage(self, fb):
        fb.fill(Rect(0, 0, 4, 4), (1, 2, 3))
        assert fb.drain_damage() == [Rect(0, 0, 4, 4)]
        assert fb.drain_damage() == []


class TestBlit:
    def test_roundtrip(self, fb, rng):
        data = rng.integers(0, 256, size=(6, 8, 3), dtype=np.uint8)
        fb.blit(Rect(5, 7, 8, 6), data)
        assert (fb.read(Rect(5, 7, 8, 6)) == data).all()

    def test_shape_mismatch_rejected(self, fb):
        with pytest.raises(GeometryError):
            fb.blit(Rect(0, 0, 4, 4), np.zeros((3, 4, 3), dtype=np.uint8))

    def test_clipped_blit_writes_visible_part(self, fb, rng):
        data = rng.integers(0, 256, size=(4, 4, 3), dtype=np.uint8)
        fb.blit(Rect(126, 0, 4, 4), data)
        assert (fb.read(Rect(126, 0, 2, 4)) == data[:, :2]).all()

    def test_read_is_a_copy(self, fb):
        fb.fill(Rect(0, 0, 4, 4), (5, 5, 5))
        block = fb.read(Rect(0, 0, 4, 4))
        block[:] = 0
        assert (fb.read(Rect(0, 0, 4, 4)) == 5).all()


class TestCopyWithin:
    def test_simple_copy(self, fb):
        fb.fill(Rect(0, 0, 4, 4), (9, 8, 7))
        fb.copy_within(Rect(0, 0, 4, 4), 10, 10)
        assert (fb.read(Rect(10, 10, 4, 4)) == (9, 8, 7)).all()

    def test_overlapping_scroll_up(self, fb, rng):
        data = rng.integers(0, 256, size=(20, 10, 3), dtype=np.uint8)
        fb.blit(Rect(0, 0, 10, 20), data)
        # Scroll up by 3 rows: rows 3.. move to 0..
        fb.copy_within(Rect(0, 3, 10, 17), 0, 0)
        assert (fb.read(Rect(0, 0, 10, 17)) == data[3:20]).all()

    def test_overlapping_scroll_down(self, fb, rng):
        data = rng.integers(0, 256, size=(20, 10, 3), dtype=np.uint8)
        fb.blit(Rect(0, 0, 10, 20), data)
        fb.copy_within(Rect(0, 0, 10, 17), 0, 3)
        assert (fb.read(Rect(0, 3, 10, 17)) == data[0:17]).all()

    def test_out_of_bounds_source_rejected(self, fb):
        with pytest.raises(GeometryError):
            fb.copy_within(Rect(120, 90, 20, 20), 0, 0)

    def test_out_of_bounds_destination_rejected(self, fb):
        with pytest.raises(GeometryError):
            fb.copy_within(Rect(0, 0, 20, 20), 120, 90)


class TestExpandBitmap:
    def test_fg_bg_selection(self, fb):
        bitmap = np.array([[True, False], [False, True]])
        fb.expand_bitmap(Rect(0, 0, 2, 2), bitmap, (255, 0, 0), (0, 0, 255))
        assert fb.pixel(0, 0) == (255, 0, 0)
        assert fb.pixel(1, 0) == (0, 0, 255)
        assert fb.pixel(0, 1) == (0, 0, 255)
        assert fb.pixel(1, 1) == (255, 0, 0)

    def test_shape_mismatch_rejected(self, fb):
        with pytest.raises(GeometryError):
            fb.expand_bitmap(
                Rect(0, 0, 3, 3), np.zeros((2, 2), bool), (0, 0, 0), (1, 1, 1)
            )


class TestAnalysis:
    def test_is_uniform_true(self, fb):
        fb.fill(Rect(0, 0, 10, 10), (4, 5, 6))
        assert fb.is_uniform(Rect(2, 2, 5, 5)) == (4, 5, 6)

    def test_is_uniform_false(self, fb):
        fb.fill(Rect(0, 0, 10, 10), (4, 5, 6))
        fb.fill(Rect(3, 3, 1, 1), (9, 9, 9))
        assert fb.is_uniform(Rect(0, 0, 10, 10)) is None

    def test_color_census_limit(self, fb, rng):
        fb.blit(
            Rect(0, 0, 16, 16),
            rng.integers(0, 256, size=(16, 16, 3), dtype=np.uint8),
        )
        census = fb.color_census(Rect(0, 0, 16, 16), limit=2)
        assert len(census) == 3  # stops just past the limit

    def test_color_census_bicolor(self, fb):
        fb.fill(Rect(0, 0, 8, 8), (0, 0, 0))
        fb.fill(Rect(0, 0, 4, 8), (255, 255, 255))
        census = fb.color_census(Rect(0, 0, 8, 8), limit=2)
        assert sorted(census) == [(0, 0, 0), (255, 255, 255)]

    def test_pixel_out_of_bounds(self, fb):
        with pytest.raises(GeometryError):
            fb.pixel(200, 0)


class TestEqualsAndDiff:
    def test_equals_self_snapshot(self, fb, rng):
        fb.blit(
            Rect(0, 0, 32, 32),
            rng.integers(0, 256, size=(32, 32, 3), dtype=np.uint8),
        )
        assert fb.equals(fb.snapshot())

    def test_not_equals_after_change(self, fb):
        snap = fb.snapshot()
        fb.fill(Rect(0, 0, 1, 1), (1, 1, 1))
        assert not fb.equals(snap)

    def test_diff_rects_empty_when_identical(self, fb):
        assert fb.diff_rects(fb.snapshot()) == []

    def test_diff_rects_cover_changes(self, fb):
        snap = fb.snapshot()
        fb.fill(Rect(10, 20, 5, 3), (9, 9, 9))
        fb.fill(Rect(50, 60, 5, 3), (9, 9, 9))
        rects = fb.diff_rects(snap)
        changed_rows = {20, 21, 22, 60, 61, 62}
        covered = set()
        for r in rects:
            covered.update(range(r.y, r.y2))
        assert changed_rows <= covered

    def test_diff_rects_size_mismatch(self, fb):
        with pytest.raises(GeometryError):
            fb.diff_rects(FrameBuffer(10, 10))

    def test_snapshot_does_not_share_damage(self, fb):
        fb.fill(Rect(0, 0, 2, 2), (1, 1, 1))
        clone = fb.snapshot()
        assert clone.peek_damage() == ()
        assert len(fb.peek_damage()) == 1
