"""Parameterisations of the four GUI benchmark applications (Table 2).

Each :class:`AppProfile` bundles an input-timing model, a display-update
archetype (size classes with per-class content mixes), and resource
coefficients, calibrated jointly to the landmark numbers the paper
reports:

* input rates (Figure 2): all apps <1 % of events above 28 Hz, ~70 %
  below 10 Hz; Netscape/Photoshop markedly more >=1 s gaps;
* update sizes (Figure 3): ~50 % of events under 10 Kpixels everywhere;
  Frame Maker/PIM rarely exceed 10 Kpixels; ~30 % of Netscape/Photoshop
  events above 50 Kpixels, Netscape > Photoshop in raw pixels;
* encoded sizes (Figure 5): <=25 % of Photoshop/Netscape events above
  10 KB and ~5 % above 50 KB; Frame Maker/PIM: <=~17 % above 1 KB and
  <=2 % above 10 KB — achieved by making *large* updates scroll/fill
  dominated and concentrating literal pixels in rare whole-image ops;
* content mixes (Figure 4): Photoshop compresses ~2x (SET-dominated in
  bytes), the others >=10x; FILL removes 40-75 % of raw bytes;
* CPU demand (Section 6.1): Photoshop 14 %, Netscape 13 %, Frame Maker
  8 %, PIM 3 % of a 296 MHz processor on average.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import WorkloadError
from repro.workloads.display_model import DisplayModel, SizeClass, UpdateArchetype
from repro.workloads.input_model import InputModel

# Content-share tuples are (fill, text, copy, image).


@dataclass(frozen=True)
class AppProfile:
    """Everything needed to simulate one benchmark application."""

    name: str
    input_model: InputModel
    archetype: UpdateArchetype
    #: Mean CPU utilization target on the 296 MHz reference CPU (0..1).
    cpu_mean: float
    #: Resident memory per user session, MB (1999-era footprints).
    memory_mb: float
    #: Fixed CPU cost per input event, reference-CPU seconds.
    cpu_per_event: float
    #: CPU cost per repainted pixel, reference-CPU seconds.
    cpu_per_pixel: float

    def __post_init__(self) -> None:
        if not 0 < self.cpu_mean < 1:
            raise WorkloadError("cpu_mean must be within (0, 1)")

    def display_model(self) -> DisplayModel:
        return DisplayModel(self.archetype)

    def typical_burst_seconds(self) -> float:
        """CPU demand of one typical input event's processing.

        This is the burst granularity the load generator replays at:
        the per-event dispatch cost plus rendering of an expected-size
        update.  Image-heavy applications have much chunkier bursts
        (a Photoshop filter is one long computation), which is what makes
        them queue against the yardstick earlier at equal utilization.
        """
        return (
            self.cpu_per_event
            + self.cpu_per_pixel * self.archetype.expected_area()
        )


PHOTOSHOP = AppProfile(
    name="Photoshop",
    input_model=InputModel(
        burst_weight=0.30,
        working_weight=0.36,
        key_fraction=0.25,  # mostly mouse-driven
        pause_median=3.0,
    ),
    archetype=UpdateArchetype(
        classes=(
            # Brush dabs, palette twiddles: small, image-literal heavy.
            SizeClass("dab", 0.42, 600.0, 1.0, (0.20, 0.10, 0.05, 0.65), 0.05),
            # Tool/dialog interactions.
            SizeClass("widget", 0.19, 6_000.0, 0.8, (0.45, 0.25, 0.10, 0.20), 0.10),
            # Panel/window repaints: flat-chrome dominated.
            SizeClass("panel", 0.19, 35_000.0, 0.7, (0.55, 0.08, 0.25, 0.12), 0.10),
            # Canvas scroll / window move: big pixels, tiny encodings.
            SizeClass("scroll", 0.15, 190_000.0, 0.7, (0.40, 0.02, 0.55, 0.03), 0.05),
            # Whole-image operations (filters, opens): the SET payload.
            SizeClass("image-op", 0.05, 300_000.0, 0.5, (0.08, 0.01, 0.01, 0.90), 0.04),
        ),
    ),
    cpu_mean=0.14,
    memory_mb=45.0,
    cpu_per_event=0.012,
    cpu_per_pixel=5.5e-7,
)

NETSCAPE = AppProfile(
    name="Netscape",
    input_model=InputModel(
        burst_weight=0.32,
        working_weight=0.35,
        key_fraction=0.35,
        pause_median=2.8,
    ),
    archetype=UpdateArchetype(
        classes=(
            # Link hovers, form typing, small widget updates.
            SizeClass("echo", 0.50, 500.0, 1.0, (0.30, 0.45, 0.05, 0.20), 0.30),
            SizeClass("widget", 0.135, 6_000.0, 0.8, (0.45, 0.35, 0.08, 0.12), 0.30),
            # Scrolling a page: the dominant big-pixel interaction.
            SizeClass("scroll", 0.17, 120_000.0, 0.6, (0.36, 0.08, 0.53, 0.03), 0.35),
            # Rendering a new page: fills + text + inline images.
            SizeClass("page", 0.16, 130_000.0, 0.5, (0.52, 0.24, 0.08, 0.16), 0.50),
            # Image-heavy page loads: the literal-pixel tail.
            SizeClass("image-page", 0.035, 120_000.0, 0.35, (0.45, 0.08, 0.12, 0.35), 0.45),
        ),
    ),
    cpu_mean=0.13,
    memory_mb=24.0,
    cpu_per_event=0.010,
    cpu_per_pixel=4.5e-7,
)

FRAMEMAKER = AppProfile(
    name="FrameMaker",
    input_model=InputModel(
        burst_weight=0.45,
        working_weight=0.40,
        key_fraction=0.80,  # mostly typing
        pause_median=2.2,
    ),
    archetype=UpdateArchetype(
        classes=(
            # Character echo while typing.
            SizeClass("echo", 0.66, 350.0, 0.9, (0.20, 0.70, 0.05, 0.05), 0.30),
            # Word/line reflow, menus.
            SizeClass("reflow", 0.20, 4_000.0, 0.8, (0.35, 0.50, 0.10, 0.05), 0.30),
            # Paragraph/page-region repaints.
            SizeClass("region", 0.09, 22_000.0, 0.7, (0.44, 0.38, 0.16, 0.02), 0.30),
            # Page scroll / page turn.
            SizeClass("scroll", 0.05, 70_000.0, 0.6, (0.38, 0.10, 0.50, 0.02), 0.30),
        ),
    ),
    cpu_mean=0.08,
    memory_mb=22.0,
    cpu_per_event=0.008,
    cpu_per_pixel=6.0e-7,
)

PIM = AppProfile(
    name="PIM",
    input_model=InputModel(
        burst_weight=0.42,
        working_weight=0.43,
        key_fraction=0.70,
        pause_median=2.0,
    ),
    archetype=UpdateArchetype(
        classes=(
            SizeClass("echo", 0.64, 300.0, 0.9, (0.25, 0.65, 0.05, 0.05), 0.30),
            SizeClass("widget", 0.22, 4_500.0, 0.8, (0.45, 0.42, 0.10, 0.03), 0.30),
            SizeClass("pane", 0.10, 25_000.0, 0.7, (0.50, 0.34, 0.15, 0.01), 0.30),
            SizeClass("scroll", 0.04, 70_000.0, 0.6, (0.38, 0.18, 0.43, 0.01), 0.30),
        ),
    ),
    cpu_mean=0.03,
    memory_mb=10.0,
    cpu_per_event=0.004,
    cpu_per_pixel=3.0e-7,
)

SCROLLHEAVY = AppProfile(
    name="ScrollHeavy",
    input_model=InputModel(
        burst_weight=0.55,  # flick-scrolling: dense event trains
        working_weight=0.33,
        key_fraction=0.30,
        pause_median=1.8,
    ),
    archetype=UpdateArchetype(
        classes=(
            # Cursor/selection echo between scrolls.
            SizeClass("echo", 0.28, 450.0, 0.9, (0.25, 0.55, 0.08, 0.12), 0.30),
            # Continuous wheel/flick scrolling: the dominant class, big
            # regions moved every frame with a fresh strip painted in.
            SizeClass("scroll", 0.47, 160_000.0, 0.55, (0.18, 0.12, 0.62, 0.08), 0.30),
            # Viewport-filling repaints (tab switch, page jump).
            SizeClass("page", 0.19, 220_000.0, 0.5, (0.42, 0.26, 0.12, 0.20), 0.45),
            # Media-rich viewports: the literal-pixel tail.
            SizeClass("image-page", 0.06, 180_000.0, 0.4, (0.35, 0.06, 0.15, 0.44), 0.40),
        ),
    ),
    cpu_mean=0.16,
    memory_mb=60.0,
    cpu_per_event=0.006,
    cpu_per_pixel=4.0e-7,
)

#: The Table 2 GUI benchmark set, keyed by name.
BENCHMARK_APPS: Dict[str, AppProfile] = {
    app.name: app for app in (PHOTOSHOP, NETSCAPE, FRAMEMAKER, PIM)
}

#: The WAN/mobile adversity-matrix workload axis: the paper's four GUI
#: applications plus the modern scroll-heavy web/IDE session that
#: stresses sustained big-pixel throughput (the worst matrix cell).
ADVERSITY_APPS: Dict[str, AppProfile] = dict(
    BENCHMARK_APPS, **{SCROLLHEAVY.name: SCROLLHEAVY}
)
