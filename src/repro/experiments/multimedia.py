"""Section 7: multimedia over SLIM (MPEG-II, live NTSC, Quake).

Each experiment is a pipeline-throughput analysis over the real costs in
the system: server CPU per frame (decode / translate / transmit), wire
bytes per frame (computed from the actual CSCS geometry), the 100 Mbps
link, and console decode time (Table 5 costs).  The achieved frame rate
is the slowest stage's rate, capped at the source rate; the binding
stage is reported, because *which* stage binds is the paper's point —
the server, not the console or the network, bottlenecks single-stream
multimedia, and only deliberate parallelism exposes the console's limit.

Console streaming note: the paper's sustained multimedia rates
(Section 7.2-7.3) exceed what Table 5's per-pixel constants allow —
back-to-back CSCS streams of fixed geometry skip per-command scaler
reconfiguration and benefit from sequential access, an effect worth
~0.62x on the per-pixel cost.  That factor is applied to the console
stage here and documented wherever reported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.commands import CscsCommand
from repro.core.costs import ConsoleCostModel
from repro.core.video import StreamGeometry
from repro.experiments.runner import (
    ExperimentConfig,
    ExperimentResult,
    experiment,
)
from repro.framebuffer.regions import Rect
from repro.units import ETHERNET_100, MBPS
from repro.workloads.quake import (
    QUAKE_FULL,
    QUAKE_QUARTER,
    QUAKE_THREE_QUARTER,
    QuakeConfig,
)
from repro.workloads.video import MPEG2_CLIP, NTSC_LIVE

#: Sustained-stream discount on CSCS per-pixel console cost (see module
#: docstring).
STREAMING_DISCOUNT = 0.62

#: The E4500's CPUs (Table 3) relative to the 336 MHz costs stored in
#: the workload models.
SERVER_CPUS = 8

#: Server CPU cost per *transmitted* pixel for YUV extraction + protocol
#: transmission (336 MHz).  Charged on video pipelines in addition to
#: decode; sending every other line halves this term, which is the
#: paper's route to full frame rate (Section 7.1).
EXTRACT_S_PER_PIXEL = 62.5e-9

_cost_model = ConsoleCostModel()


@dataclass(frozen=True)
class PipelineResult:
    """Outcome of one multimedia pipeline analysis."""

    name: str
    fps: float
    bandwidth_bps: float
    bottleneck: str
    stage_fps: Dict[str, float]


def console_seconds_per_frame(geometry: StreamGeometry) -> float:
    """Console decode time for one frame, with the streaming discount."""
    probe = CscsCommand(
        rect=geometry.dst,
        src_w=geometry.src_w,
        src_h=geometry.transmitted_h,
        bits_per_pixel=geometry.bits_per_pixel,
    )
    entry = _cost_model.entry_for(probe)
    pixels = probe.source_pixels
    return (
        entry.startup_ns + entry.per_pixel_ns * STREAMING_DISCOUNT * pixels
    ) * 1e-9


def pipeline(
    name: str,
    geometry: StreamGeometry,
    server_s_per_frame: float,
    source_fps: float,
    instances: int = 1,
    server_cpus: int = SERVER_CPUS,
) -> PipelineResult:
    """Throughput of ``instances`` identical streams through the system.

    Each instance gets its own CPU (up to ``server_cpus``); the wire and
    the console are shared by all instances.
    """
    frame_bytes = geometry.frame_wire_nbytes()
    usable_cpus = min(instances, server_cpus)
    server_fps = usable_cpus / server_s_per_frame / instances
    wire_fps = ETHERNET_100 / (frame_bytes * 8) / instances
    console_fps = 1.0 / console_seconds_per_frame(geometry) / instances
    stage_fps = {
        "source": source_fps,
        "server": server_fps,
        "wire": wire_fps,
        "console": console_fps,
    }
    bottleneck = min(stage_fps, key=stage_fps.get)
    fps = stage_fps[bottleneck]
    return PipelineResult(
        name=name,
        fps=fps,
        bandwidth_bps=fps * instances * frame_bytes * 8,
        bottleneck=bottleneck,
        stage_fps=stage_fps,
    )


# --- Section 7.1: MPEG-II player ------------------------------------------


def mpeg2_pipeline(interlace: bool = False) -> PipelineResult:
    """The 720x480 MPEG-II clip at 6 bpp; optionally the every-other-line
    + console-upscale variant that halves bandwidth."""
    geometry = StreamGeometry(
        dst=Rect(0, 0, 720, 480),
        src_w=720,
        src_h=480,
        bits_per_pixel=6,
        interlace=interlace,
    )
    name = "mpeg2-720x480" + ("-interlaced" if interlace else "")
    transmitted = geometry.src_w * geometry.transmitted_h
    return pipeline(
        name,
        geometry,
        server_s_per_frame=MPEG2_CLIP.decode_s_per_frame
        + EXTRACT_S_PER_PIXEL * transmitted,
        source_fps=MPEG2_CLIP.native_fps,
    )


# --- Section 7.2: live NTSC video ------------------------------------------


def ntsc_pipeline(instances: int = 1, half_size: bool = False) -> PipelineResult:
    """Live NTSC: 640x240 fields scaled to 640x480 on the console.

    ``instances`` > 1 reproduces the paper's simulated application-level
    parallelism (four half-size players).
    """
    if half_size:
        spec = NTSC_LIVE.scaled(320, 240, name="ntsc-320x240")
        dst = Rect(0, 0, 320, 240)
        src_w, src_h = 320, 240
    else:
        spec = NTSC_LIVE
        dst = Rect(0, 0, 640, 480)
        src_w, src_h = 640, 240
    geometry = StreamGeometry(
        dst=dst, src_w=src_w, src_h=src_h, bits_per_pixel=8
    )
    return pipeline(
        f"{spec.name}x{instances}",
        geometry,
        server_s_per_frame=spec.decode_s_per_frame
        + EXTRACT_S_PER_PIXEL * src_w * src_h,
        source_fps=spec.native_fps,
        instances=instances,
    )


# --- Section 7.3: Quake ------------------------------------------------------


def quake_pipeline(
    config: QuakeConfig,
    instances: int = 1,
    scene_complexity: float = 0.5,
) -> PipelineResult:
    """Quake at a given resolution: render + translate + transmit."""
    geometry = StreamGeometry(
        dst=Rect(0, 0, config.width, config.height),
        src_w=config.width,
        src_h=config.height,
        bits_per_pixel=config.bits_per_pixel,
    )
    server_cost = (
        config.render_s_per_frame(scene_complexity)
        + config.translate_s_per_frame()
        + config.transmit_s_per_frame()
    )
    return pipeline(
        f"quake-{config.width}x{config.height}x{instances}",
        geometry,
        server_s_per_frame=server_cost,
        source_fps=config.target_fps,
        instances=instances,
    )


@experiment(
    "multimedia",
    title="Section 7: MPEG-II, live NTSC, and Quake over SLIM",
    section="7",
)
def run(config: ExperimentConfig) -> ExperimentResult:
    cases: List[Tuple[PipelineResult, str]] = [
        (mpeg2_pipeline(), "20Hz, ~40Mbps, server-bound"),
        (mpeg2_pipeline(interlace=True), "30Hz at ~half bandwidth"),
        (ntsc_pipeline(), "16-20Hz, ~19-23Mbps, server-bound"),
        (ntsc_pipeline(instances=4, half_size=True), "25-28Hz, 59-66Mbps, console-bound"),
        (quake_pipeline(QUAKE_FULL, scene_complexity=0.3), "18-21Hz, 22-26Mbps"),
        (quake_pipeline(QUAKE_THREE_QUARTER, scene_complexity=0.3), "28-34Hz, 20-24Mbps"),
        (quake_pipeline(QUAKE_QUARTER, instances=4), "37-40Hz, 46-50Mbps, console-bound"),
    ]
    rows = []
    for result, paper in cases:
        rows.append(
            {
                "pipeline": result.name,
                "fps": round(result.fps, 1),
                "Mbps": round(result.bandwidth_bps / MBPS, 1),
                "bottleneck": result.bottleneck,
                "paper": paper,
            }
        )
    return ExperimentResult(
        experiment_id="multimedia",
        title="Section 7: MPEG-II, live NTSC, and Quake over SLIM",
        rows=rows,
        notes=[
            "fps for multi-instance rows is per instance",
            "server performance, not console bandwidth/processing, is the "
            "bottleneck for single streams; deliberate parallelism exposes "
            "the console limit",
            f"console CSCS per-pixel costs carry a {STREAMING_DISCOUNT}x "
            "sustained-streaming factor (see module docstring)",
        ],
    )

