"""Seeded equivalence locks for the batching tier.

PR-5 style: these tests pin the *scalar* semantics before the batched
rewrite lands, then hold the cohort-drain engine and the burst/fast
fabric transit to them bit for bit.

* the engine's firing order (including same-timestamp ties) is checked
  against an independent stable-sort oracle, not against the engine
  itself, so cohort draining cannot quietly redefine the contract;
* ``schedule_batch`` must be observationally identical to N scalar
  ``schedule`` calls at the same instant;
* the fast transit path (``set_fast_transit``) must reproduce the
  scalar path's delivery traces, RNG stream consumption, folded link
  statistics, and mid-run introspection exactly — under Bernoulli
  loss, Gilbert–Elliott burst loss, jitter, and queue-limit drops;
* fixed-seed experiment tables (`fig8`, `lossy_fabric`) stay
  byte-identical between the two modes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.netsim.engine import Simulator
from repro.netsim.link import GilbertElliottLoss, Link, set_fast_transit
from repro.netsim.packet import Packet
from repro.netsim.transport import Endpoint, Network


@pytest.fixture
def scalar_fabric():
    """Force the scalar transit path for the duration of a test."""
    previous = set_fast_transit(False)
    yield
    set_fast_transit(previous)


def _with_transit(fast: bool, fn):
    previous = set_fast_transit(fast)
    try:
        return fn()
    finally:
        set_fast_transit(previous)


# ---------------------------------------------------------------------------
# Engine ordering vs an independent oracle
# ---------------------------------------------------------------------------


class _OracleEngine:
    """A deliberately naive reference engine: stable sort on (when, seq).

    Ten lines of obviously-correct semantics the real engine must match
    event for event, whatever cohort tricks it plays internally.
    """

    def __init__(self) -> None:
        self.now = 0.0
        self._events = []
        self._seq = 0

    def schedule(self, delay, callback):
        self._events.append((self.now + delay, self._seq, callback))
        self._seq += 1

    def run(self):
        while self._events:
            self._events.sort(key=lambda e: (e[0], e[1]))
            when, _, callback = self._events.pop(0)
            self.now = when
            callback()


def _drive(engine, order, rng_seed: int) -> None:
    """A deterministic cascading workload with many same-time ties."""
    rng = np.random.default_rng(rng_seed)
    delays = rng.integers(0, 5, size=200) * 0.001  # coarse grid => ties
    fanout = rng.integers(0, 3, size=200)

    def fire(tag: int):
        def cb():
            order.append((engine.now, tag))
            for child in range(int(fanout[tag % 200])):
                nxt = (tag * 7 + child * 13 + 1) % 200
                if tag < 600:  # bounded cascade
                    engine.schedule(float(delays[nxt]), fire(tag + 200))

        return cb

    for tag in range(40):
        engine.schedule(float(delays[tag]), fire(tag))


@pytest.mark.parametrize("seed", [0, 1, 7])
def test_engine_order_matches_stable_sort_oracle(seed):
    real_order, oracle_order = [], []
    sim = Simulator()
    _drive(sim, real_order, seed)
    sim.run()
    oracle = _OracleEngine()
    _drive(oracle, oracle_order, seed)
    oracle.run()
    assert real_order == oracle_order
    assert len(real_order) > 40  # the cascade actually cascaded


def test_schedule_batch_equivalent_to_scalar_schedules():
    """N callbacks in one batch == N consecutive schedule() calls."""

    def run(batched: bool):
        sim = Simulator()
        order = []

        def tag(t):
            return lambda: order.append((sim.now, t))

        # Interleave: earlier tie, the batch, later tie — FIFO must hold.
        sim.schedule(0.005, tag("before"))
        if batched:
            sim.schedule_batch(0.005, [tag("a"), tag("b"), tag("c")])
        else:
            sim.schedule(0.005, tag("a"))
            sim.schedule(0.005, tag("b"))
            sim.schedule(0.005, tag("c"))
        sim.schedule(0.005, tag("after"))
        sim.schedule(0.001, lambda: sim.schedule(0.004, tag("nested")))
        sim.run()
        return order, sim.events_processed

    scalar_order, scalar_count = run(batched=False)
    batch_order, batch_count = run(batched=True)
    assert batch_order == scalar_order
    assert batch_count == scalar_count  # cohort counts every member


def test_schedule_batch_members_count_and_pending():
    sim = Simulator()
    hits = []
    sim.schedule_batch(0.01, [lambda: hits.append(1)] * 4)
    sim.schedule(0.02, lambda: hits.append(2))
    assert sim.pending == 5  # batch members are individually pending
    sim.run()
    assert len(hits) == 5
    assert sim.events_processed == 5
    assert sim.pending == 0


def test_schedule_batch_empty_and_negative():
    sim = Simulator()
    sim.schedule_batch(0.01, [])
    assert sim.pending == 0
    from repro.errors import SimulationError

    with pytest.raises(SimulationError):
        sim.schedule_batch(-1.0, [lambda: None])


def test_stop_mid_cohort_leaves_rest_queued():
    """stop() between batch members matches scalar stop() semantics:
    the remaining members stay queued and fire on the next run()."""
    sim = Simulator()
    order = []

    def mk(t):
        return lambda: order.append(t)

    def stopper():
        order.append("stop")
        sim.stop()

    sim.schedule_batch(0.01, [mk("a"), stopper, mk("b"), mk("c")])
    sim.run()
    assert order == ["a", "stop"]
    sim.run()
    assert order == ["a", "stop", "b", "c"]


def test_monitor_cadence_with_batches():
    """Monitor fires on every crossing of the `every` boundary even when
    cohorts bump the counter by more than one."""
    sim = Simulator()
    ticks = []

    def monitor(s):
        ticks.append(s.events_processed)

    monitor.every = 10
    sim.set_monitor(monitor)
    for k in range(5):
        sim.schedule_batch(0.0001 * (k + 1), [lambda: None] * 4)  # 20 events
    for i in range(15):
        sim.schedule(0.002 + i * 0.001, lambda: None)  # 15 singletons
    sim.run(max_events=100)
    assert sim.events_processed == 35
    # Counter path: 4, 8, 12, 16, 20, then 21..35 — one check per
    # cohort, so the boundary crossings fire at 12, 20, and 30.
    assert ticks == [12, 20, 30]


# ---------------------------------------------------------------------------
# Fast transit vs scalar transit
# ---------------------------------------------------------------------------


def _run_link_workload(
    *,
    loss_rate=0.0,
    jitter=0.0,
    burst_loss=None,
    queue_limit=None,
    seed=123,
    use_burst=False,
):
    """One lossy/jittery link under a seeded bursty workload.

    Returns (delivery trace, accepted flags, folded stats, rng state,
    mid-run probes) — everything the fast path must reproduce exactly.
    """
    sim = Simulator()
    rng = np.random.default_rng(seed)
    delivered = []
    link = Link(
        sim,
        rate_bps=10e6,
        propagation_delay=20e-6,
        deliver=lambda p: delivered.append((sim.now, p.payload, p.nbytes)),
        queue_limit_bytes=queue_limit,
        loss_rate=loss_rate,
        jitter=jitter,
        burst_loss=burst_loss,
        rng=rng if (loss_rate or jitter or burst_loss is not None) else None,
    )
    plan = np.random.default_rng(seed + 1)
    sizes = plan.integers(64, 1500, size=120)
    gaps = plan.integers(0, 3, size=120) * 150e-6
    accepted = []
    cursor = [0]

    def send_some():
        i = cursor[0]
        if i >= 120:
            return
        n = int(plan.integers(1, 5))  # a small train at one instant
        train = [
            Packet(
                src="a", dst="b", nbytes=int(sizes[(i + k) % 120]),
                payload=i + k,
            )
            for k in range(n)
        ]
        if use_burst and len(train) > 1:
            accepted.extend(link.send_burst(train))
        else:
            for p in train:
                accepted.append(link.send(p))
        cursor[0] = i + n
        sim.schedule(float(gaps[i % 120]) + 1e-6, send_some)

    sim.schedule(0.0, send_some)
    probes = []
    for slice_end in (0.001, 0.0025, 0.004, 0.02):
        sim.run_until(slice_end)
        probes.append(
            (link.queue_depth, link.queued_bytes, round(link.utilization(), 12))
        )
    sim.run()
    stats = link.stats
    return (
        delivered,
        accepted,
        (
            stats.packets_sent,
            stats.bytes_sent,
            stats.packets_dropped,
            stats.packets_lost,
            stats.queue_delay_total,
            stats.busy_time,
        ),
        rng.bit_generator.state if link.rng is not None else None,
        probes,
    )


@pytest.mark.parametrize(
    "kwargs",
    [
        {},
        {"loss_rate": 0.15},
        {"jitter": 40e-6},
        {"loss_rate": 0.1, "jitter": 25e-6},
        {"queue_limit": 4000},
        {"loss_rate": 0.2, "queue_limit": 3000},
    ],
    ids=["clean", "bernoulli", "jitter", "loss+jitter", "taildrop", "loss+drop"],
)
def test_fast_transit_matches_scalar(kwargs):
    scalar = _with_transit(False, lambda: _run_link_workload(**kwargs))
    fast = _with_transit(True, lambda: _run_link_workload(**kwargs))
    assert fast == scalar


def test_fast_transit_matches_scalar_gilbert_elliott():
    def run():
        return _run_link_workload(
            burst_loss=GilbertElliottLoss(0.05, 0.3, loss_good=0.01),
            seed=77,
        )

    assert _with_transit(True, run) == _with_transit(False, run)


@pytest.mark.parametrize(
    "kwargs",
    [{}, {"loss_rate": 0.12}, {"loss_rate": 0.1, "jitter": 30e-6}],
    ids=["clean", "bernoulli", "loss+jitter"],
)
def test_send_burst_matches_scalar_sends(kwargs):
    """send_burst consumes the RNG stream in per-packet order: a bursty
    workload produces the same trace whether trains go through
    send_burst or one send() per packet — in both transit modes."""
    for fast in (False, True):
        loop = _with_transit(
            fast, lambda: _run_link_workload(use_burst=False, **kwargs)
        )
        burst = _with_transit(
            fast, lambda: _run_link_workload(use_burst=True, **kwargs)
        )
        assert burst == loop, f"fast={fast}"


def _run_star_workload(*, seed=5, loss_rate=0.0, use_burst=False):
    """A three-endpoint switched star with crossing traffic."""
    sim = Simulator()
    network = Network(sim, default_rate_bps=100e6)
    log = []

    def rx(name):
        return lambda p: log.append((round(sim.now, 12), name, p.nbytes, p.flow))

    rng = np.random.default_rng(seed)
    for name in ("a", "b", "c"):
        network.attach(
            Endpoint(name, on_receive=rx(name)),
            loss_rate=loss_rate,
            rng=np.random.default_rng(seed + ord(name)) if loss_rate else None,
        )
    plan = np.random.default_rng(seed + 99)
    names = ("a", "b", "c")

    def emit(i):
        def cb():
            src = names[i % 3]
            dst = names[(i + 1 + int(plan.integers(0, 2))) % 3]
            if dst == src:
                dst = names[(i + 2) % 3]
            train = [
                Packet(src=src, dst=dst, nbytes=int(plan.integers(64, 1400)),
                       flow=f"f{i}")
                for _ in range(int(plan.integers(1, 4)))
            ]
            if use_burst:
                network.send_burst(train)
            else:
                for p in train:
                    network.send(p)

        return cb

    for i in range(60):
        sim.schedule(float(plan.integers(0, 40)) * 1e-4, emit(i))
    sim.run()
    counts = tuple(
        (network.endpoint(n).packets_received, network.endpoint(n).bytes_received)
        for n in names
    )
    return log, counts, network.switch.packets_forwarded


@pytest.mark.parametrize("loss_rate", [0.0, 0.1], ids=["clean", "lossy"])
def test_switched_star_fast_matches_scalar(loss_rate):
    scalar = _with_transit(False, lambda: _run_star_workload(loss_rate=loss_rate))
    fast = _with_transit(True, lambda: _run_star_workload(loss_rate=loss_rate))
    assert fast == scalar


def test_network_send_burst_matches_scalar_sends():
    for fast in (False, True):
        loop = _with_transit(fast, lambda: _run_star_workload(use_burst=False))
        burst = _with_transit(fast, lambda: _run_star_workload(use_burst=True))
        assert burst == loop, f"fast={fast}"


def test_switch_ingress_burst_matches_sequential_ingress():
    """ingress_burst(train) == for p in train: ingress(p)."""

    def run(burst: bool, fast: bool):
        def inner():
            sim = Simulator()
            network = Network(sim, default_rate_bps=100e6)
            log = []
            for name in ("a", "b"):
                network.attach(
                    Endpoint(
                        name,
                        on_receive=lambda p, n=name: log.append(
                            (round(sim.now, 12), n, p.nbytes)
                        ),
                    )
                )
            switch = network.switch
            train = [
                Packet(src="x", dst="a" if i % 3 else "b", nbytes=200 + i)
                for i in range(12)
            ]

            def inject():
                if burst:
                    switch.ingress_burst(train)
                else:
                    for p in train:
                        switch.ingress(p)

            sim.schedule(0.001, inject)
            sim.run()
            return log, switch.packets_forwarded

        return _with_transit(fast, inner)

    for fast in (False, True):
        assert run(True, fast) == run(False, fast), f"fast={fast}"


# ---------------------------------------------------------------------------
# Fixed-seed experiment tables stay byte-identical
# ---------------------------------------------------------------------------


def _lossy_session_fingerprint():
    from repro.experiments.lossy_fabric import run_lossy_session

    channel = run_lossy_session(0.05, updates=6, seed=3)
    uplink = channel.network.uplink("server")
    downlink = channel.network.downlink("console")
    return (
        channel.console.framebuffer.pixels.tobytes(),
        channel.recoveries,
        channel.refreshes,
        channel.converged,
        uplink.stats.packets_sent,
        uplink.stats.packets_lost,
        downlink.stats.packets_sent,
        downlink.stats.packets_lost,
        channel.network.endpoint("console").packets_received,
        channel.server_channel.stats.wire_bytes,
    )


def test_lossy_session_table_byte_identical():
    scalar = _with_transit(False, _lossy_session_fingerprint)
    fast = _with_transit(True, _lossy_session_fingerprint)
    assert fast == scalar


def _yardstick_fingerprint():
    from repro.experiments.lossy_fabric import yardstick_on_lossy_fabric

    rtt, probe_loss = yardstick_on_lossy_fabric(0.1, sim_seconds=4.0, seed=11)
    return repr((rtt, probe_loss)).encode()


def test_lossy_yardstick_table_byte_identical():
    assert _with_transit(True, _yardstick_fingerprint) == _with_transit(
        False, _yardstick_fingerprint
    )


def _fig8_fingerprint():
    from repro.experiments.fig8 import bandwidth_table

    return repr(bandwidth_table(n_users=2, duration=20.0, seed=9)).encode()


def test_fig8_table_byte_identical():
    assert _with_transit(True, _fig8_fingerprint) == _with_transit(
        False, _fig8_fingerprint
    )
