"""Rectangle algebra for framebuffer regions.

SLIM display commands all operate on axis-aligned rectangles (Table 1 of
the paper), so the whole pipeline shares this one geometry type.  ``Rect``
uses the half-open convention: a rectangle covers columns ``x .. x+w-1``
and rows ``y .. y+h-1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.errors import GeometryError


@dataclass(frozen=True, order=True)
class Rect:
    """An axis-aligned rectangle with non-negative size.

    Attributes:
        x: Left edge (inclusive).
        y: Top edge (inclusive).
        w: Width in pixels.
        h: Height in pixels.
    """

    x: int
    y: int
    w: int
    h: int

    def __post_init__(self) -> None:
        if self.w < 0 or self.h < 0:
            raise GeometryError(f"negative rect size: {self.w}x{self.h}")

    # -- basic properties --------------------------------------------------
    @property
    def x2(self) -> int:
        """Right edge (exclusive)."""
        return self.x + self.w

    @property
    def y2(self) -> int:
        """Bottom edge (exclusive)."""
        return self.y + self.h

    @property
    def area(self) -> int:
        """Number of pixels covered."""
        return self.w * self.h

    @property
    def empty(self) -> bool:
        """True when the rectangle covers no pixels."""
        return self.w == 0 or self.h == 0

    def __contains__(self, point: Tuple[int, int]) -> bool:
        px, py = point
        return self.x <= px < self.x2 and self.y <= py < self.y2

    # -- set-like operations -----------------------------------------------
    def intersect(self, other: "Rect") -> "Rect":
        """Return the overlap of two rectangles (possibly empty)."""
        x = max(self.x, other.x)
        y = max(self.y, other.y)
        x2 = min(self.x2, other.x2)
        y2 = min(self.y2, other.y2)
        if x2 <= x or y2 <= y:
            return Rect(x, y, 0, 0)
        return Rect(x, y, x2 - x, y2 - y)

    def intersects(self, other: "Rect") -> bool:
        """True when the rectangles share at least one pixel."""
        return not self.intersect(other).empty

    def contains_rect(self, other: "Rect") -> bool:
        """True when ``other`` lies entirely within this rectangle."""
        if other.empty:
            return True
        return (
            self.x <= other.x
            and self.y <= other.y
            and other.x2 <= self.x2
            and other.y2 <= self.y2
        )

    def union_bounds(self, other: "Rect") -> "Rect":
        """Smallest rectangle covering both (bounding box, not set union)."""
        if self.empty:
            return other
        if other.empty:
            return self
        x = min(self.x, other.x)
        y = min(self.y, other.y)
        x2 = max(self.x2, other.x2)
        y2 = max(self.y2, other.y2)
        return Rect(x, y, x2 - x, y2 - y)

    def subtract(self, other: "Rect") -> List["Rect"]:
        """Return up to four rectangles covering ``self`` minus ``other``.

        The pieces are disjoint and their areas sum to
        ``self.area - self.intersect(other).area``.
        """
        overlap = self.intersect(other)
        if overlap.empty:
            return [] if self.empty else [self]
        pieces: List[Rect] = []
        # Band above the overlap.
        if overlap.y > self.y:
            pieces.append(Rect(self.x, self.y, self.w, overlap.y - self.y))
        # Band below the overlap.
        if overlap.y2 < self.y2:
            pieces.append(Rect(self.x, overlap.y2, self.w, self.y2 - overlap.y2))
        # Left sliver beside the overlap.
        if overlap.x > self.x:
            pieces.append(Rect(self.x, overlap.y, overlap.x - self.x, overlap.h))
        # Right sliver beside the overlap.
        if overlap.x2 < self.x2:
            pieces.append(Rect(overlap.x2, overlap.y, self.x2 - overlap.x2, overlap.h))
        return pieces

    # -- transformations ---------------------------------------------------
    def translate(self, dx: int, dy: int) -> "Rect":
        """Return this rectangle shifted by ``(dx, dy)``."""
        return Rect(self.x + dx, self.y + dy, self.w, self.h)

    def inset(self, margin: int) -> "Rect":
        """Shrink by ``margin`` on every side, clamping to empty."""
        w = max(0, self.w - 2 * margin)
        h = max(0, self.h - 2 * margin)
        return Rect(self.x + margin, self.y + margin, w, h)

    def slices(self) -> Tuple[slice, slice]:
        """Return ``(row_slice, col_slice)`` for numpy indexing."""
        return slice(self.y, self.y2), slice(self.x, self.x2)

    def rows(self) -> Iterator[int]:
        """Iterate over the row indices covered."""
        return iter(range(self.y, self.y2))

    def __str__(self) -> str:
        return f"{self.w}x{self.h}+{self.x}+{self.y}"


def clip_rect(rect: Rect, bounds: Rect) -> Rect:
    """Clip ``rect`` to ``bounds``; result may be empty."""
    return rect.intersect(bounds)


def tile_rect(rect: Rect, tile_w: int, tile_h: int) -> List[Rect]:
    """Split ``rect`` into a grid of tiles at most ``tile_w`` x ``tile_h``.

    The final row/column of tiles may be smaller.  Used by the encoder to
    bound per-command payload sizes to the network MTU.
    """
    if tile_w <= 0 or tile_h <= 0:
        raise GeometryError(f"tile size must be positive: {tile_w}x{tile_h}")
    tiles: List[Rect] = []
    y = rect.y
    while y < rect.y2:
        h = min(tile_h, rect.y2 - y)
        x = rect.x
        while x < rect.x2:
            w = min(tile_w, rect.x2 - x)
            tiles.append(Rect(x, y, w, h))
            x += w
        y += h
    return tiles


def union_bounds(rects: Sequence[Rect]) -> Optional[Rect]:
    """Bounding box of a sequence of rectangles, or None when empty."""
    result: Optional[Rect] = None
    for rect in rects:
        if rect.empty:
            continue
        result = rect if result is None else result.union_bounds(rect)
    return result


def total_area(rects: Sequence[Rect]) -> int:
    """Sum of the areas of ``rects`` (overlaps counted twice)."""
    return sum(r.area for r in rects)


def disjoint_area(rects: Sequence[Rect]) -> int:
    """Area of the union of ``rects``, counting overlaps once.

    Uses a sweep over distinct y-bands; adequate for the modest region
    counts produced per display update.
    """
    active = [r for r in rects if not r.empty]
    if not active:
        return 0
    ys = sorted({r.y for r in active} | {r.y2 for r in active})
    area = 0
    for y0, y1 in zip(ys, ys[1:]):
        spans = sorted(
            (r.x, r.x2) for r in active if r.y <= y0 and r.y2 >= y1
        )
        if not spans:
            continue
        covered = 0
        cur_start, cur_end = spans[0]
        for start, end in spans[1:]:
            if start > cur_end:
                covered += cur_end - cur_start
                cur_start, cur_end = start, end
            else:
                cur_end = max(cur_end, end)
        covered += cur_end - cur_start
        area += covered * (y1 - y0)
    return area
