"""Timestamped protocol traces and their persistence.

The instrumented SLIM driver records one :class:`InputRecord` per
keystroke/mouse click and one :class:`UpdateRecord` per display update.
A :class:`SessionTrace` bundles a user session's records and implements
the paper's post-processing: the event<-update attribution heuristic of
Section 5.2 ("all pixel changes that occur between two input events are
considered to be induced by the first event"), per-event byte counts
(Figure 5), compression breakdowns (Figure 4), and average bandwidth
(Figure 8).

Traces serialise to JSON-lines so expensive user-study simulations can be
run once and post-processed many times — the same economy the paper's
methodology was designed around.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.errors import ReproError


@dataclass(frozen=True)
class InputRecord:
    """One user input event (keystroke or mouse click)."""

    time: float
    kind: str  # "key" or "click"


@dataclass(frozen=True)
class UpdateRecord:
    """One display update as logged by the instrumented SLIM driver.

    Attributes:
        time: When the update was generated.
        pixels: Pixels affected (sum over the update's commands).
        wire_bytes: Total SLIM bytes on the wire, all headers included.
        payload_bytes_by_opcode: Per-command-type body bytes (Figure 4).
        pixels_by_opcode: Per-command-type pixels affected.
        commands_by_opcode: Per-command-type command counts.
        service_time: Console decode time charged for the update
            (Figure 7), seconds.
        x_bytes: Bytes the same update costs under the X protocol
            (Figure 8 comparison), when computed.
        raw_bytes: Bytes under the raw-pixel protocol.
    """

    time: float
    pixels: int
    wire_bytes: int
    payload_bytes_by_opcode: Dict[str, int]
    pixels_by_opcode: Dict[str, int]
    commands_by_opcode: Dict[str, int]
    service_time: float = 0.0
    x_bytes: int = 0
    raw_bytes: int = 0


@dataclass
class SessionTrace:
    """All records from one user session of one application."""

    application: str
    user: str
    duration: float
    inputs: List[InputRecord] = field(default_factory=list)
    updates: List[UpdateRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ReproError("session duration must be positive")

    # -- Figure 2: input event frequency ------------------------------------
    def input_frequencies(self) -> List[float]:
        """Instantaneous event frequency: 1 / gap to the previous event."""
        times = [r.time for r in self.inputs]
        return [
            1.0 / (b - a)
            for a, b in zip(times, times[1:])
            if b > a
        ]

    def input_intervals(self) -> List[float]:
        """Inter-event gaps in seconds."""
        times = [r.time for r in self.inputs]
        return [b - a for a, b in zip(times, times[1:]) if b > a]

    # -- Figure 3/5: attribution heuristic ------------------------------------
    def updates_per_event(self) -> List[List[UpdateRecord]]:
        """Group updates by inducing input event (Section 5.2 heuristic).

        All updates between event *i* and event *i+1* are attributed to
        event *i*.  Updates before the first event are attributed to a
        synthetic session-start event, matching the paper's treatment of
        application startup painting.
        """
        if not self.inputs:
            return [list(self.updates)] if self.updates else []
        event_times = [r.time for r in self.inputs]
        groups: List[List[UpdateRecord]] = [[] for _ in range(len(event_times) + 1)]
        for update in self.updates:
            # Index of the most recent event at or before the update.
            lo, hi = 0, len(event_times)
            while lo < hi:
                mid = (lo + hi) // 2
                if event_times[mid] <= update.time:
                    lo = mid + 1
                else:
                    hi = mid
            groups[lo].append(update)
        # groups[0] holds pre-first-event updates.
        return groups

    def pixels_per_event(self) -> List[int]:
        """Pixels changed per input event (Figure 3's samples)."""
        return [
            sum(u.pixels for u in group)
            for group in self.updates_per_event()
        ]

    def bytes_per_event(self) -> List[int]:
        """SLIM wire bytes per input event (Figure 5's samples)."""
        return [
            sum(u.wire_bytes for u in group)
            for group in self.updates_per_event()
        ]

    # -- Figure 4: compression breakdown ----------------------------------------
    def opcode_totals(self) -> Tuple[Dict[str, int], Dict[str, int]]:
        """(payload bytes by opcode, pixels by opcode) over the session."""
        bytes_by: Dict[str, int] = {}
        pixels_by: Dict[str, int] = {}
        for update in self.updates:
            for op, nbytes in update.payload_bytes_by_opcode.items():
                bytes_by[op] = bytes_by.get(op, 0) + nbytes
            for op, npx in update.pixels_by_opcode.items():
                pixels_by[op] = pixels_by.get(op, 0) + npx
        return bytes_by, pixels_by

    def compression_factor(self) -> float:
        """Raw pixel bytes / SLIM payload bytes (Figure 4's message)."""
        raw = sum(u.pixels for u in self.updates) * 3
        slim = sum(
            sum(u.payload_bytes_by_opcode.values()) for u in self.updates
        )
        if slim == 0:
            return float("inf") if raw > 0 else 1.0
        return raw / slim

    # -- Figure 8: bandwidths ------------------------------------------------------
    def mean_bandwidth_bps(self) -> float:
        """Average SLIM bandwidth over the session, bits/second."""
        total = sum(u.wire_bytes for u in self.updates)
        return total * 8 / self.duration

    def mean_x_bandwidth_bps(self) -> float:
        """Average X-protocol bandwidth, when the driver recorded it."""
        return sum(u.x_bytes for u in self.updates) * 8 / self.duration

    def mean_raw_bandwidth_bps(self) -> float:
        """Average raw-pixel bandwidth."""
        return sum(u.raw_bytes for u in self.updates) * 8 / self.duration

    # -- Figure 7 --------------------------------------------------------------------
    def service_times(self) -> List[float]:
        """Console service time per display update, seconds."""
        return [u.service_time for u in self.updates]


# --- persistence -----------------------------------------------------------------


def save_traces(traces: Sequence[SessionTrace], path: Path) -> None:
    """Write traces as JSON lines (one session per line)."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for trace in traces:
            record = {
                "application": trace.application,
                "user": trace.user,
                "duration": trace.duration,
                "inputs": [asdict(r) for r in trace.inputs],
                "updates": [asdict(u) for u in trace.updates],
            }
            handle.write(json.dumps(record) + "\n")


def load_traces(path: Path) -> List[SessionTrace]:
    """Read traces written by :func:`save_traces`."""
    path = Path(path)
    traces: List[SessionTrace] = []
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            traces.append(
                SessionTrace(
                    application=record["application"],
                    user=record["user"],
                    duration=record["duration"],
                    inputs=[InputRecord(**r) for r in record["inputs"]],
                    updates=[UpdateRecord(**u) for u in record["updates"]],
                )
            )
    return traces
