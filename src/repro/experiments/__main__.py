"""Regenerate the paper's evaluation section from the command line.

Usage::

    python -m repro.experiments              # every table and figure
    python -m repro.experiments fig9 fig11   # a subset
    python -m repro.experiments --list       # what's available
"""

from __future__ import annotations

import argparse
import sys
import time

# Importing the modules registers their runners.
from repro.experiments import (  # noqa: F401
    ablations,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    multimedia,
    scalability,
    table4,
    table5,
)
from repro.experiments.runner import REGISTRY, render_table


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the SLIM paper's tables and figures.",
    )
    parser.add_argument("ids", nargs="*", help="experiment ids (default: all)")
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument(
        "--markdown",
        metavar="PATH",
        help="also write the results as a markdown report",
    )
    args = parser.parse_args(argv)

    if args.list:
        for experiment_id in REGISTRY:
            print(experiment_id)
        return 0

    selected = args.ids or list(REGISTRY)
    unknown = [i for i in selected if i not in REGISTRY]
    if unknown:
        parser.error(f"unknown experiments: {', '.join(unknown)}")
    results = []
    for experiment_id in selected:
        started = time.time()
        result = REGISTRY[experiment_id]()
        results.append(result)
        print(render_table(result))
        print(f"  ({time.time() - started:.1f}s)")
        print()
    if args.markdown:
        from repro.experiments.report import write_report

        path = write_report(results, args.markdown)
        print(f"markdown report written to {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
