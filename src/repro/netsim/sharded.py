"""Multi-process sharded simulation backend (conservative lookahead).

A campus or enterprise fleet — tens of thousands to a million simulated
desktops — does not fit one event heap.  :class:`ShardedBackend`
partitions a simulation across worker processes, one shard per
workgroup/switch subtree, and implements the same
:class:`~repro.netsim.backend.SimulationBackend` protocol as the local
engine, so experiment code written against the interface runs unchanged
on either.

**Synchronization.**  The shards run a synchronous conservative
algorithm: time advances in windows bounded by the *lookahead* — the
minimum propagation delay of any inter-shard link.  Every shard executes
its events up to the window barrier, then all boundary messages produced
in the window are exchanged and the next window begins.  This is safe
because a message sent at time ``s`` with delay ``d >= lookahead``
arrives at ``s + d``, which is at or after the barrier — no shard can
ever receive a message "in its past".  When every shard is idle until
some future time ``t`` the window jumps straight to ``t + lookahead``,
so idle simulated hours cost one barrier, not millions.

**Topology partitioning.**  The constructor takes a ``build`` callable
invoked once inside each worker with a :class:`ShardContext`; it
constructs that shard's subtree (switches, links, endpoints, workload
generators) on the shard's private :class:`Simulator` and registers
handlers for named boundary ports.  Cross-shard traffic goes through
``ctx.send(port, payload, delay, dst_shard=...)`` — the payloads cross a
pipe, so they must be plain picklable data (the wire representation of a
boundary packet, not live objects).

**Control plane.**  The parent process keeps its own engine for
coordinator work: ``schedule``/``schedule_at``/monitor callbacks run
there, and shards can address messages to ``COORDINATOR`` (telemetry
reports, merged results).  ``collect()`` gathers each shard program's
results plus its telemetry snapshot at a barrier and merges them.

:class:`LocalBus` is the single-process stand-in: the same shard program
built against it runs whole on a :class:`LocalBackend`, which is how the
determinism seam is tested (``ShardedBackend`` with one shard must match
``LocalBackend`` byte for byte on fixed seeds).
"""

from __future__ import annotations

import itertools
import multiprocessing
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.netsim.engine import Simulator, set_default_monitor

__all__ = [
    "COORDINATOR",
    "DEFAULT_LOOKAHEAD",
    "LocalBus",
    "ShardCollection",
    "ShardContext",
    "ShardedBackend",
    "merge_telemetry",
]

#: Pseudo shard index addressing the parent process (control plane).
COORDINATOR = -1

#: Default conservative lookahead, seconds.  Real deployments pass the
#: minimum inter-shard link propagation delay explicitly.
DEFAULT_LOOKAHEAD = 1e-3

#: A boundary message in flight:
#: ``(arrival_time, src_shard, seq, dst_shard, port, payload, trace)``.
#: ``trace`` is an opaque causal-trace context dict (or None) riding
#: alongside the payload, so a display update crossing shards keeps its
#: telescoping stage partition (see TraceCollector.boundary_export).
_Message = Tuple[float, int, int, int, str, Any, Any]


def _check_delay(delay: Optional[float], lookahead: float) -> float:
    delay = lookahead if delay is None else float(delay)
    if delay < lookahead:
        raise SimulationError(
            f"inter-shard delay {delay}s is below the lookahead "
            f"{lookahead}s; conservative synchronization would be unsound"
        )
    return delay


class ShardContext:
    """What a shard's ``build`` callable gets to work with.

    Attributes:
        sim: The shard's private event engine (a :class:`Simulator`).
        shard_index: This shard's index in ``range(n_shards)``.
        n_shards: Total shard count.
        lookahead: The backend's synchronization lookahead; every
            outbound delay must be >= it.
    """

    def __init__(
        self, sim: Simulator, shard_index: int, n_shards: int, lookahead: float
    ) -> None:
        self.sim = sim
        self.shard_index = shard_index
        self.n_shards = n_shards
        self.lookahead = lookahead
        self._handlers: Dict[str, Callable[[Any, float], None]] = {}
        self._outbox: List[_Message] = []
        self._seq = itertools.count()
        #: The trace context of the boundary message currently being
        #: delivered (set around handler invocation), so relay receivers
        #: can adopt the sender's causal trace without threading it
        #: through every handler signature.
        self.current_trace: Optional[Any] = None
        #: Hop log for the flight recorder: one record per traced
        #: boundary send.
        self.boundary_hops: List[Dict[str, Any]] = []

    def on_receive(
        self, port: str, handler: Callable[[Any, float], None]
    ) -> None:
        """Register ``handler(payload, arrival_time)`` for a boundary port."""
        self._handlers[port] = handler

    def send(
        self,
        port: str,
        payload: Any,
        delay: Optional[float] = None,
        dst_shard: int = COORDINATOR,
        trace: Optional[Any] = None,
    ) -> None:
        """Emit a boundary message ``delay`` seconds of propagation away.

        ``delay`` defaults to (and must be at least) the lookahead.
        ``dst_shard`` is another shard's index, or :data:`COORDINATOR`
        for the parent process.  ``trace`` is an optional causal-trace
        context (from ``TraceCollector.boundary_export``) delivered as
        ``ctx.current_trace`` around the receiving handler; it defaults
        to the context of the message currently being handled, so a
        relayed hop keeps its trace without explicit plumbing.
        """
        delay = _check_delay(delay, self.lookahead)
        if dst_shard != COORDINATOR and not 0 <= dst_shard < self.n_shards:
            raise SimulationError(f"unknown destination shard {dst_shard}")
        if trace is None:
            trace = self.current_trace
        arrival = self.sim.now + delay
        if trace is not None:
            self.boundary_hops.append(
                {
                    "gid": trace.get("gid") if isinstance(trace, dict) else None,
                    "port": port,
                    "src_shard": self.shard_index,
                    "dst_shard": dst_shard,
                    "sent_at": self.sim.now,
                    "arrival": arrival,
                }
            )
        if dst_shard == self.shard_index:
            # Intra-shard loopback stays on the local heap.
            self.sim.schedule_at(
                arrival,
                _Delivery(self._handlers, port, payload, arrival, self, trace),
            )
            return
        self._outbox.append(
            (
                arrival,
                self.shard_index,
                next(self._seq),
                dst_shard,
                port,
                payload,
                trace,
            )
        )


class _Delivery:
    """A scheduled boundary-message arrival (late-bound handler lookup)."""

    __slots__ = ("handlers", "port", "payload", "arrival", "ctx", "trace")

    def __init__(self, handlers, port, payload, arrival, ctx=None, trace=None):
        self.handlers = handlers
        self.port = port
        self.payload = payload
        self.arrival = arrival
        self.ctx = ctx
        self.trace = trace

    def __call__(self) -> None:
        handler = self.handlers.get(self.port)
        if handler is None:
            raise SimulationError(
                f"no handler registered for boundary port {self.port!r}"
            )
        ctx = self.ctx
        if ctx is None or self.trace is None:
            handler(self.payload, self.arrival)
            return
        previous = ctx.current_trace
        ctx.current_trace = self.trace
        try:
            handler(self.payload, self.arrival)
        finally:
            ctx.current_trace = previous


class LocalBus(ShardContext):
    """A :class:`ShardContext` for running the whole topology unsharded.

    Build the same shard program(s) against a :class:`LocalBus` and all
    boundary sends become plain in-simulator scheduled deliveries with
    identical delays — the seam that lets one experiment run on either
    backend, and that the 1-shard equivalence test pins down.
    Coordinator-addressed messages are delivered to handlers registered
    on this same bus.
    """

    def __init__(self, sim: Simulator, lookahead: float = DEFAULT_LOOKAHEAD) -> None:
        super().__init__(sim, 0, 1, lookahead)

    def send(
        self,
        port: str,
        payload: Any,
        delay: Optional[float] = None,
        dst_shard: int = COORDINATOR,
        trace: Optional[Any] = None,
    ) -> None:
        delay = _check_delay(delay, self.lookahead)
        if dst_shard != COORDINATOR and dst_shard != 0:
            raise SimulationError(f"unknown destination shard {dst_shard}")
        if trace is None:
            trace = self.current_trace
        arrival = self.sim.now + delay
        if trace is not None:
            self.boundary_hops.append(
                {
                    "gid": trace.get("gid") if isinstance(trace, dict) else None,
                    "port": port,
                    "src_shard": 0,
                    "dst_shard": dst_shard,
                    "sent_at": self.sim.now,
                    "arrival": arrival,
                }
            )
        self.sim.schedule_at(
            arrival,
            _Delivery(self._handlers, port, payload, arrival, self, trace),
        )


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


def _shard_worker(
    conn,
    shard_index: int,
    n_shards: int,
    lookahead: float,
    build: Optional[Callable[..., Any]],
    build_args: Tuple[Any, ...],
) -> None:
    """Worker-process main loop: build the shard, then serve barriers."""
    try:
        from repro.obs.timeseries import active_collection

        # An active parent collection (inherited through fork) is the
        # signal to sample this shard's engine too; the series travels
        # back over the pipe at the collect barrier.
        parent_series = active_collection()
        # The parent's live-progress monitor factory must not leak into
        # shard engines (N processes racing on one stderr line).
        set_default_monitor(None)
        sim = Simulator()
        ctx = ShardContext(sim, shard_index, n_shards, lookahead)
        # An armed parent flight recorder (also inherited through fork)
        # arms a rings-only clone here: bounded tracer + wire ring, no
        # bundle dumping — the parent gathers and stitches the evidence
        # at the collect barrier.
        from repro.obs.flightrec import active_recorder

        recorder = None
        if active_recorder() is not None:
            from repro.obs.context import ObsContext, set_obs
            from repro.obs.flightrec import FlightRecorder

            parent_rec = active_recorder()
            recorder = FlightRecorder(
                out_dir=None,
                label=f"shard-{shard_index}",
                specs=parent_rec.specs,
            )
            set_obs(recorder.obs_context())
        program = build(ctx, *build_args) if build is not None else None
        sampler = None
        if parent_series is not None:
            # After build: shard programs may install their own registry
            # (e.g. build_fleet_shard), and that is the one to sample.
            from repro.obs.timeseries import RunSeries, attach_sampler
            from repro.telemetry.metrics import get_registry

            registry = get_registry()
            if registry.enabled:
                run = RunSeries(
                    f"shard-{shard_index}",
                    window=parent_series.window,
                    max_windows=parent_series.max_windows,
                )
                sampler = attach_sampler(sim, run, registry=registry)
        conn.send(
            ("ready", sim.pending, sim.peek_next_time(), sim.events_processed)
        )
        while True:
            request = conn.recv()
            op = request[0]
            if op == "advance":
                _op, deadline, inbound = request
                for arrival, _src, _seq, _dst, port, payload, trace in inbound:
                    sim.schedule_at(
                        arrival,
                        _Delivery(
                            ctx._handlers, port, payload, arrival, ctx, trace
                        ),
                    )
                sim.run_until(deadline)
                outbox = ctx._outbox
                ctx._outbox = []
                conn.send(
                    (
                        "advanced",
                        sim.now,
                        sim.events_processed,
                        sim.pending,
                        sim.peek_next_time(),
                        outbox,
                    )
                )
            elif op == "collect":
                from repro.telemetry.metrics import get_registry

                payload = None
                if program is not None and hasattr(program, "collect"):
                    payload = program.collect()
                registry = get_registry()
                snapshot = registry.snapshot() if registry.enabled else []
                series = None
                if sampler is not None:
                    sampler.finish(sim.now)
                    if sampler.run.windows:
                        series = {
                            "label": sampler.run.label,
                            "window_seconds": sampler.run.window,
                            "max_windows": sampler.run.max_windows,
                            "windows": sampler.run.windows,
                        }
                flight = (
                    recorder.shard_payload(shard_index)
                    if recorder is not None
                    else None
                )
                conn.send(
                    (
                        "collected",
                        payload,
                        snapshot,
                        series,
                        list(ctx.boundary_hops),
                        flight,
                    )
                )
            elif op == "close":
                conn.send(("closed",))
                return
            else:  # pragma: no cover - protocol misuse
                raise SimulationError(f"unknown shard command {op!r}")
    except BaseException as exc:
        try:
            conn.send(
                ("error", f"{type(exc).__name__}: {exc}", traceback.format_exc())
            )
        except Exception:
            pass
    finally:
        conn.close()


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------


@dataclass
class ShardCollection:
    """Everything :meth:`ShardedBackend.collect` gathers at a barrier."""

    results: List[Any] = field(default_factory=list)
    telemetry: List[Dict[str, Any]] = field(default_factory=list)
    telemetry_per_shard: List[List[Dict[str, Any]]] = field(default_factory=list)
    #: Merged fleet-wide :class:`~repro.obs.timeseries.RunSeries` (one
    #: coherent timeline), when the run sampled time series; else None.
    series: Optional[Any] = None
    #: The raw per-shard series payloads (label/window/windows dicts).
    series_per_shard: List[Optional[Dict[str, Any]]] = field(
        default_factory=list
    )
    #: Per-shard boundary-hop logs (traced cross-shard sends).
    hops_per_shard: List[List[Dict[str, Any]]] = field(default_factory=list)
    #: Per-shard flight-recorder payloads (rings + trace records), when
    #: the run had an armed recorder; else Nones.
    flightrec_per_shard: List[Optional[Dict[str, Any]]] = field(
        default_factory=list
    )


class ShardedBackend:
    """A :class:`SimulationBackend` spanning worker processes.

    Args:
        n_shards: Worker-process count (>= 1).
        build: Callable run once inside each worker as
            ``build(ctx, *build_args)``; returns the shard program (any
            object; if it has a ``collect()`` method, its return value
            is gathered by :meth:`collect`).  None spawns empty shards
            (control-plane-only use, e.g. the conformance suite).
        build_args: Extra picklable arguments for ``build``.
        lookahead: Conservative synchronization bound — the minimum
            inter-shard propagation delay.  Every ``ctx.send`` delay
            must be >= it.
        start_method: multiprocessing start method; defaults to ``fork``
            where available (cheap, no pickling of ``build``), else the
            platform default.

    Semantics notes (vs :class:`LocalBackend`):

    * ``schedule``/``schedule_at``/``step``/monitor run on the parent's
      control-plane engine; shard work is driven by the window barriers
      inside :meth:`run`/:meth:`run_until`.
    * ``stop()`` halts at the next control event boundary; shards finish
      the in-flight window first (a conservative window cannot be
      interrupted without breaking the lookahead guarantee).
    * ``run(max_events)`` checks the control-plane limit at window
      barriers, not between individual shard events.
    * ``events_processed``/``pending`` aggregate the control plane and
      every shard as of the last barrier.
    """

    def __init__(
        self,
        n_shards: int,
        build: Optional[Callable[..., Any]] = None,
        build_args: Sequence[Any] = (),
        lookahead: float = DEFAULT_LOOKAHEAD,
        start_method: Optional[str] = None,
    ) -> None:
        if n_shards < 1:
            raise SimulationError(f"need at least one shard, got {n_shards}")
        if lookahead <= 0:
            raise SimulationError(f"lookahead must be positive, got {lookahead}")
        self.n_shards = n_shards
        self.lookahead = lookahead
        self._build = build
        self._build_args = tuple(build_args)
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._mp = multiprocessing.get_context(start_method)
        self._control = Simulator()
        self._workers: List[Tuple[Any, Any]] = []  # (process, connection)
        self._started = False
        self._closed = False
        self._stop_requested = False
        self._shard_events = [0] * n_shards
        self._shard_pending = [0] * n_shards
        self._shard_next: List[Optional[float]] = [None] * n_shards
        self._inboxes: List[List[_Message]] = [[] for _ in range(n_shards)]
        self._handlers: Dict[str, Callable[[Any, float], None]] = {}
        self._seq = itertools.count()

    # -- lifecycle ---------------------------------------------------------------
    def _ensure_started(self) -> None:
        if self._closed:
            raise SimulationError("backend is closed")
        if self._started:
            return
        self._started = True
        for index in range(self.n_shards):
            parent_conn, child_conn = self._mp.Pipe()
            process = self._mp.Process(
                target=_shard_worker,
                args=(
                    child_conn,
                    index,
                    self.n_shards,
                    self.lookahead,
                    self._build,
                    self._build_args,
                ),
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._workers.append((process, parent_conn))
        for index, (_process, conn) in enumerate(self._workers):
            reply = self._expect(index, conn.recv(), "ready")
            _tag, pending, next_time, events = reply
            self._shard_pending[index] = pending
            self._shard_next[index] = next_time
            self._shard_events[index] = events

    def _expect(self, shard: int, reply: Tuple, tag: str) -> Tuple:
        if reply[0] == "error":
            raise SimulationError(
                f"shard {shard} failed: {reply[1]}\n{reply[2]}"
            )
        if reply[0] != tag:  # pragma: no cover - protocol misuse
            raise SimulationError(
                f"shard {shard}: expected {tag!r}, got {reply[0]!r}"
            )
        return reply

    def close(self) -> None:
        """Shut the worker processes down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for process, conn in self._workers:
            try:
                conn.send(("close",))
            except (OSError, ValueError):
                pass
        for process, conn in self._workers:
            try:
                while conn.poll(5):
                    if conn.recv()[0] == "closed":
                        break
            except (EOFError, OSError):
                pass
            conn.close()
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - hung worker
                process.terminate()
                process.join(timeout=5)
        self._workers = []

    def __enter__(self) -> "ShardedBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # -- coordinator boundary traffic -------------------------------------------
    def on_receive(
        self, port: str, handler: Callable[[Any, float], None]
    ) -> None:
        """Register ``handler(payload, arrival_time)`` for messages that
        shards address to :data:`COORDINATOR`."""
        self._handlers[port] = handler

    def send_to_shard(
        self,
        dst_shard: int,
        port: str,
        payload: Any,
        delay: Optional[float] = None,
    ) -> None:
        """Send a boundary message from the control plane to a shard."""
        if not 0 <= dst_shard < self.n_shards:
            raise SimulationError(f"unknown destination shard {dst_shard}")
        delay = _check_delay(delay, self.lookahead)
        arrival = self._control.now + delay
        self._inboxes[dst_shard].append(
            (arrival, COORDINATOR, next(self._seq), dst_shard, port, payload, None)
        )

    # -- SimulationBackend: scheduling (control plane) ---------------------------
    @property
    def now(self) -> float:
        return self._control.now

    @property
    def events_processed(self) -> int:
        return self._control.events_processed + sum(self._shard_events)

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        self._control.schedule(delay, callback)

    def schedule_at(self, when: float, callback: Callable[[], None]) -> None:
        self._control.schedule_at(when, callback)

    def schedule_batch(
        self, delay: float, callbacks: Iterable[Callable[[], None]]
    ) -> None:
        self._control.schedule_batch(delay, callbacks)

    def set_monitor(self, monitor) -> None:
        self._control.set_monitor(monitor)

    def step(self) -> bool:
        """Process one control-plane event (shards are barrier-driven)."""
        return self._control.step()

    def stop(self) -> None:
        self._stop_requested = True
        self._control.stop()

    # -- SimulationBackend: introspection ----------------------------------------
    @property
    def pending(self) -> int:
        in_flight = sum(len(inbox) for inbox in self._inboxes)
        return self._control.pending + sum(self._shard_pending) + in_flight

    def peek_next_time(self) -> Optional[float]:
        candidates = []
        control_next = self._control.peek_next_time()
        if control_next is not None:
            candidates.append(control_next)
        candidates.extend(t for t in self._shard_next if t is not None)
        for inbox in self._inboxes:
            candidates.extend(message[0] for message in inbox)
        return min(candidates) if candidates else None

    # -- SimulationBackend: execution --------------------------------------------
    def _advance(self, window_end: float) -> None:
        """One conservative window: everyone to ``window_end``, then swap
        boundary messages at the barrier."""
        for index, (_process, conn) in enumerate(self._workers):
            inbox = sorted(self._inboxes[index], key=lambda m: (m[0], m[1], m[2]))
            self._inboxes[index] = []
            conn.send(("advance", window_end, inbox))
        # The control plane advances while the workers churn in parallel.
        self._control.run_until(window_end)
        for index, (_process, conn) in enumerate(self._workers):
            reply = self._expect(index, conn.recv(), "advanced")
            _tag, now, events, pending, next_time, outbox = reply
            self._shard_events[index] = events
            self._shard_pending[index] = pending
            self._shard_next[index] = next_time
            for message in outbox:
                arrival, _src, _seq, dst, port, payload, _trace = message
                if dst == COORDINATOR:
                    # arrival >= window start + lookahead >= window_end,
                    # and the control clock sits at window_end (or before,
                    # if stop() fired) — never in the past.
                    self._control.schedule_at(
                        arrival, _Delivery(self._handlers, port, payload, arrival)
                    )
                else:
                    self._inboxes[dst].append(message)

    def _window_end(self, limit: Optional[float]) -> Optional[float]:
        """Upper edge of the next safe window, or None when drained.

        A window is safe when no event inside it can produce a message
        that also *arrives* inside it; since every boundary delay is
        >= lookahead, any window ending within ``lookahead`` of the
        earliest pending event qualifies — so idle stretches are jumped
        in one barrier instead of ticked through.
        """
        next_time = self.peek_next_time()
        if next_time is None:
            if limit is not None and self._control.now < limit:
                return limit  # drained early: advance every clock to the deadline
            return None
        window_end = next_time + self.lookahead
        if limit is not None:
            window_end = min(window_end, limit)
        return window_end if window_end > self._control.now else None

    def run_until(self, deadline: float) -> None:
        """Advance everything to ``deadline`` in conservative windows."""
        self._ensure_started()
        try:
            # _window_end returns the deadline itself once everything has
            # drained, so the final window lands every clock exactly there.
            while not self._stop_requested and self._control.now < deadline:
                window_end = self._window_end(deadline)
                if window_end is None:
                    break
                self._advance(window_end)
        finally:
            self._stop_requested = False

    def run(self, max_events: Optional[int] = None) -> None:
        """Run until every queue everywhere drains.

        ``max_events`` bounds *control-plane* events and is enforced at
        window barriers.
        """
        self._ensure_started()
        limit = (
            None
            if max_events is None
            else self._control.events_processed + max_events
        )
        try:
            while not self._stop_requested:
                if limit is not None and self._control.events_processed >= limit:
                    break
                window_end = self._window_end(None)
                if window_end is None:
                    break
                self._advance(window_end)
        finally:
            self._stop_requested = False

    # -- results -----------------------------------------------------------------
    def collect(self) -> ShardCollection:
        """Gather shard program results and telemetry at a barrier."""
        self._ensure_started()
        collection = ShardCollection()
        for _process, conn in self._workers:
            conn.send(("collect",))
        for index, (_process, conn) in enumerate(self._workers):
            reply = self._expect(index, conn.recv(), "collected")
            _tag, payload, snapshot, series, hops, flight = reply
            collection.results.append(payload)
            collection.telemetry_per_shard.append(snapshot)
            collection.series_per_shard.append(series)
            collection.hops_per_shard.append(hops)
            collection.flightrec_per_shard.append(flight)
        collection.telemetry = merge_telemetry(collection.telemetry_per_shard)
        if any(collection.series_per_shard):
            from repro.obs.timeseries import (
                RunSeries,
                active_collection,
                merge_runs,
            )

            shard_runs = []
            for data in collection.series_per_shard:
                if not data:
                    continue
                run = RunSeries(
                    data["label"],
                    window=data["window_seconds"],
                    max_windows=data["max_windows"],
                )
                run.windows = list(data["windows"])
                shard_runs.append(run)
            collection.series = merge_runs(shard_runs, label="sharded/merged")
            # Surface the fleet timeline on the runner's collection so
            # --timeseries JSONL and the SLO engine see sharded runs too.
            active = active_collection()
            if active is not None:
                merged = collection.series
                merged.label = active.next_label()
                active.adopt_run(merged, observe=True)
        if any(f is not None for f in collection.flightrec_per_shard):
            from repro.obs.flightrec import active_recorder

            recorder = active_recorder()
            if recorder is not None:
                all_hops = [
                    hop
                    for shard_hops in collection.hops_per_shard
                    for hop in shard_hops
                ]
                recorder.absorb_shards(
                    collection.flightrec_per_shard, all_hops
                )
        return collection


# ---------------------------------------------------------------------------
# Telemetry merging
# ---------------------------------------------------------------------------


def merge_telemetry(
    snapshots: Sequence[List[Dict[str, Any]]],
) -> List[Dict[str, Any]]:
    """Merge per-shard registry snapshots into one fleet-wide view.

    Counters sum.  Gauges keep the last shard's value (they are
    point-in-time readings; summing shares would fabricate a meaning).
    Histograms merge exactly where the math allows — count, sum, min,
    max, and bucket counts — and approximate quantiles as the
    count-weighted mean of the per-shard estimates (each is itself a P²
    estimate, so the merged figure is labelled approximate by nature).
    """
    merged: Dict[Tuple[str, str, Tuple], Dict[str, Any]] = {}
    weights: Dict[Tuple[str, str, Tuple], float] = {}
    for snapshot in snapshots:
        for entry in snapshot:
            key = (
                entry["kind"],
                entry["name"],
                tuple(sorted(entry.get("labels", {}).items())),
            )
            current = merged.get(key)
            if current is None:
                merged[key] = dict(entry)
                if entry["kind"] == "histogram":
                    weights[key] = float(entry.get("count", 0))
                continue
            kind = entry["kind"]
            if kind == "counter":
                current["value"] += entry["value"]
            elif kind == "gauge":
                current["value"] = entry["value"]
            elif kind == "histogram":
                count = float(entry.get("count", 0))
                previous_weight = weights.get(key, 0.0)
                current["count"] += entry["count"]
                current["sum"] += entry["sum"]
                for bound in ("min", "max"):
                    ours, theirs = current.get(bound), entry.get(bound)
                    if theirs is None:
                        continue
                    if ours is None:
                        current[bound] = theirs
                    else:
                        current[bound] = (
                            min(ours, theirs) if bound == "min" else max(ours, theirs)
                        )
                if current.get("count"):
                    current["mean"] = current["sum"] / current["count"]
                ours_buckets = current.get("buckets") or []
                theirs_buckets = entry.get("buckets") or []
                if (
                    ours_buckets
                    and len(ours_buckets) == len(theirs_buckets)
                    and all(
                        a[0] == b[0] for a, b in zip(ours_buckets, theirs_buckets)
                    )
                ):
                    current["buckets"] = [
                        [a[0], a[1] + b[1]]
                        for a, b in zip(ours_buckets, theirs_buckets)
                    ]
                total = previous_weight + count
                if total > 0:
                    current["quantiles"] = {
                        q: (
                            previous_weight * current["quantiles"].get(q, 0.0)
                            + count * value
                        )
                        / total
                        for q, value in entry.get("quantiles", {}).items()
                    }
                weights[key] = total
    return list(merged.values())
