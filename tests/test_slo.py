"""Tests for the interactivity SLO engine (repro.obs.slo).

Exercises spec matching and budget-burn math, contiguous-violation
health events with trace-id annotation, the built-in detectors (loss
bursts, tier thrash, queue buildup), and the report's render/JSONL
surfaces against hand-built windowed runs.
"""

import json

import pytest

from repro.errors import ReproError
from repro.obs.slo import (
    INTERACTIVITY_SLOS,
    KEYSTROKE_ECHO,
    LOSS_BURST_MIN,
    QUEUE_BUILDUP_RUN,
    TIER_THRASH_MIN,
    SloEngine,
    SloSpec,
    validate_slo_records,
)
from repro.obs.timeseries import RunSeries, TimeSeriesCollection

GAUGE_SLO = SloSpec(
    name="tier_cap",
    metric="bw.tier.level",
    kind="gauge",
    threshold=1.0,
    op="<=",
    budget=0.25,
    event="tier_floor",
)


def make_run(label="run", window=1.0, records=()):
    run = RunSeries(label, window=window)
    for record in records:
        run.append_window(record)
    return run


def gauge_window(t0, value, **extra):
    record = {
        "t0": t0,
        "t1": t0 + 1.0,
        "counters": {},
        "gauges": {"bw.tier.level{client=1}": value},
        "histograms": {},
    }
    record.update(extra)
    return record


def rtt_window(t0, p95_ish, count=10, **extra):
    # One bucket at the value itself so the windowed p95 lands there.
    record = {
        "t0": t0,
        "t1": t0 + 1.0,
        "counters": {},
        "gauges": {},
        "histograms": {
            "net.yardstick.rtt_seconds": {
                "count": count,
                "sum": p95_ish * count,
                "buckets": [[p95_ish, count], [float("inf"), 0]],
            }
        },
    }
    record.update(extra)
    return record


class TestSloSpec:
    def test_matches_bare_and_labelled_keys(self):
        assert GAUGE_SLO.matches("bw.tier.level")
        assert GAUGE_SLO.matches("bw.tier.level{client=1}")
        assert not GAUGE_SLO.matches("bw.tier.level.other")
        assert not GAUGE_SLO.matches("bw.tier")

    def test_passes_respects_operator(self):
        assert GAUGE_SLO.passes(1.0) and not GAUGE_SLO.passes(1.5)
        above = SloSpec(
            name="fps", metric="m", kind="counter_rate", threshold=20.0,
            op=">=",
        )
        assert above.passes(24.0) and not above.passes(19.0)

    def test_bad_op_and_budget_rejected(self):
        with pytest.raises(ReproError):
            SloSpec(name="x", metric="m", kind="gauge", threshold=1, op="!=")
        with pytest.raises(ReproError):
            SloSpec(name="x", metric="m", kind="gauge", threshold=1,
                    budget=1.5)

    def test_default_set_is_paper_grounded(self):
        names = {spec.name for spec in INTERACTIVITY_SLOS}
        assert names == {
            "keystroke_echo",
            "video_frame_rate",
            "loss_recovery",
            "tier_residency",
        }
        assert KEYSTROKE_ECHO.threshold == pytest.approx(0.150)
        assert KEYSTROKE_ECHO.quantile == pytest.approx(0.95)


class TestEvaluation:
    def test_budget_burn_and_compliance(self):
        # 8 windows, 2 violations, budget 25% -> allowed 2, burn 1.0,
        # still compliant (violations == allowed is the boundary).
        records = [gauge_window(float(i), 1.0) for i in range(6)]
        records += [gauge_window(6.0, 2.0), gauge_window(7.0, 2.0)]
        report = SloEngine([GAUGE_SLO]).evaluate([make_run(records=records)])
        (result,) = report.results
        assert result.windows == 8 and result.violations == 2
        assert result.burn == pytest.approx(1.0)
        assert result.compliant and report.compliant
        assert result.ok_windows == 6

    def test_zero_budget_violation_burns_infinite(self):
        spec = SloSpec(
            name="hard", metric="bw.tier.level", kind="gauge",
            threshold=1.0, budget=0.0,
        )
        report = SloEngine([spec]).evaluate(
            [make_run(records=[gauge_window(0.0, 2.0)])]
        )
        (result,) = report.results
        assert result.burn == float("inf") and not result.compliant
        assert result.to_dict()["burn"] == "inf"

    def test_windowed_quantile_violation_against_keystroke_echo(self):
        run = make_run(
            "cellular/static",
            records=[rtt_window(0.0, 0.02), rtt_window(1.0, 0.9)],
        )
        report = SloEngine([KEYSTROKE_ECHO]).evaluate([run])
        result = report.compliance("cellular/static", "keystroke_echo")
        assert result.violations == 1 and not result.compliant
        assert result.worst["t0"] == pytest.approx(1.0)
        assert result.worst["value"] > KEYSTROKE_ECHO.threshold

    def test_no_matching_series_produces_no_result(self):
        run = make_run(records=[rtt_window(0.0, 0.02)])
        report = SloEngine([GAUGE_SLO]).evaluate([run])
        assert report.results == []
        assert report.compliance("run", "tier_cap") is None
        assert report.compliant  # vacuously

    def test_accepts_collection_or_iterable(self):
        collection = TimeSeriesCollection(window=1.0)
        run = collection.new_run("r")
        run.append_window(gauge_window(0.0, 0.5))
        by_collection = SloEngine([GAUGE_SLO]).evaluate(collection)
        by_list = SloEngine([GAUGE_SLO]).evaluate([run])
        assert len(by_collection.results) == len(by_list.results) == 1


class TestHealthEvents:
    def test_contiguous_violations_merge_into_one_event(self):
        records = [
            gauge_window(0.0, 0.0),
            gauge_window(1.0, 2.0, trace_ids=[4]),
            gauge_window(2.0, 3.0, trace_ids=[5]),
            gauge_window(3.0, 0.0),
            gauge_window(4.0, 2.0),
        ]
        report = SloEngine([GAUGE_SLO]).evaluate([make_run(records=records)])
        tier_events = [e for e in report.events if e.kind == "tier_floor"]
        assert len(tier_events) == 2
        merged = tier_events[0]
        assert (merged.t0, merged.t1) == (1.0, 3.0)
        assert merged.value == 3.0  # worst value across the stretch
        assert merged.trace_ids == [4, 5]
        assert tier_events[1].t0 == 4.0

    def test_loss_burst_detector(self):
        records = [
            {
                "t0": 0.0, "t1": 1.0,
                "counters": {"net.link.packets_lost{link=down}": 2},
                "gauges": {}, "histograms": {},
            },
            {
                "t0": 1.0, "t1": 2.0,
                "counters": {
                    "net.link.packets_lost{link=down}": LOSS_BURST_MIN
                },
                "gauges": {}, "histograms": {},
                "trace_ids": [9],
            },
        ]
        report = SloEngine([]).evaluate([make_run(records=records)])
        (event,) = report.events
        assert event.kind == "loss_burst"
        assert event.t0 == 1.0 and event.value == LOSS_BURST_MIN
        assert event.trace_ids == [9]

    def test_tier_thrash_detector_sums_label_streams(self):
        records = [{
            "t0": 0.0, "t1": 1.0,
            "counters": {
                "bw.tier.transitions{client=1}": 1,
                "bw.tier.transitions{client=2}": TIER_THRASH_MIN - 1,
            },
            "gauges": {}, "histograms": {},
        }]
        report = SloEngine([]).evaluate([make_run(records=records)])
        (event,) = report.events
        assert event.kind == "tier_thrash"
        assert event.value == TIER_THRASH_MIN

    def test_queue_buildup_detector_needs_a_monotonic_run(self):
        def queue_windows(values):
            return [
                {
                    "t0": float(i), "t1": float(i) + 1.0, "counters": {},
                    "gauges": {"server.queue.depth": v}, "histograms": {},
                }
                for i, v in enumerate(values)
            ]

        rising = SloEngine([]).evaluate(
            [make_run(records=queue_windows([1, 2, 3]))]
        )
        assert [e.kind for e in rising.events] == ["queue_buildup"]
        assert rising.events[0].value == 3

        sawtooth = SloEngine([]).evaluate(
            [make_run(records=queue_windows([1, 2, 1, 2, 1, 2]))]
        )
        assert sawtooth.events == []
        assert QUEUE_BUILDUP_RUN == 3


class TestReport:
    def report(self):
        runs = [
            make_run("lan/static", records=[rtt_window(0.0, 0.01)]),
            make_run(
                "cellular/static",
                records=[rtt_window(0.0, 0.8, trace_ids=[17])],
            ),
        ]
        return SloEngine([KEYSTROKE_ECHO]).evaluate(runs)

    def test_render_marks_ok_and_viol(self):
        text = self.report().render()
        assert "ok  " in text and "VIOL" in text
        assert "lan/static" in text and "cellular/static" in text
        assert "health events" in text and "traces [17]" in text

    def test_records_validate_and_round_trip_json(self, tmp_path):
        report = self.report()
        records = report.to_records()
        validate_slo_records(records)
        path = tmp_path / "slo.jsonl"
        count = report.write_jsonl(str(path))
        lines = path.read_text().strip().split("\n")
        assert len(lines) == count
        loaded = [json.loads(line) for line in lines]
        validate_slo_records(loaded)
        kinds = {record["type"] for record in loaded}
        assert kinds == {"slo_header", "slo", "event"}

    @pytest.mark.parametrize(
        "mutate, message",
        [
            (lambda r: r.clear(), "empty"),
            (lambda r: r.pop(0), "header"),
            (lambda r: r[1].pop("compliant"), "compliant"),
            (lambda r: r[-1].pop("trace_ids"), "trace_ids"),
            (lambda r: r.append({"type": "mystery"}), "unknown record"),
        ],
    )
    def test_validate_rejects_corruption(self, mutate, message):
        records = self.report().to_records()
        mutate(records)
        with pytest.raises(ReproError, match=message):
            validate_slo_records(records)

    def test_compliance_returns_worst_burn(self):
        # Two labelled streams of the same metric in one run: the lookup
        # must surface the worse one.
        run = make_run("r")
        run.append_window({
            "t0": 0.0, "t1": 1.0, "counters": {},
            "gauges": {
                "bw.tier.level{client=1}": 0.0,
                "bw.tier.level{client=2}": 2.0,
            },
            "histograms": {},
        })
        report = SloEngine([GAUGE_SLO]).evaluate([run])
        assert len(report.results) == 2
        worst = report.compliance("r", "tier_cap")
        assert worst.series == "bw.tier.level{client=2}"
        assert not worst.compliant
