"""A reliable server -> console display channel over the simulated fabric.

:class:`DisplayChannel` wires the full stack end to end:

    SlimDriver -> ServerChannel -> WireCodec fragmentation -> Network
      -> ConsoleChannel -> WireCodec reassembly -> Console decode

with loss recovery done in-band: the console's gap detection emits real
NACK packets over the reverse path, the server re-encodes the damaged
regions from its *current* framebuffer (full-screen refresh once the
damage map has evicted the seq), and the periodic status exchange bounds
tail-loss recovery — the last update of a burst is recovered
deterministically, with no out-of-band settle loop.

The status timer quiesces once the console confirms every sent seq, so
``sim.run()`` drains naturally after convergence.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.encoder import SlimEncoder
from repro.console.console import Console
from repro.framebuffer.framebuffer import FrameBuffer
from repro.netsim.backend import LocalBackend, SimulationBackend
from repro.netsim.transport import Network
from repro.obs.context import ObsContext, get_obs
from repro.telemetry.metrics import MetricsRegistry
from repro.transport.console import ConsoleChannel
from repro.transport.server import DEFAULT_STATUS_INTERVAL, ServerChannel
from repro.units import ETHERNET_100


class DisplayChannel:
    """One server framebuffer reliably mirrored onto one console.

    Args:
        framebuffer: The authoritative server framebuffer.
        sim: Event engine; created if omitted.
        network: Fabric; a default switched star is built if omitted.
        rate_bps: Link rate for a built network.
        loss_rate: Random loss probability on the *server's* link pair —
            display traffic and the console's NACKs both cross it, so
            recovery requests are lossy too.
        seed: RNG seed for loss decisions (determinism).
        console: Console to feed; one matching the framebuffer is
            created if omitted (simulator-attached).
        status_interval: Status-exchange period, seconds.
        nack_delay: Console reorder-tolerance window before NACKing.
        nack_timeout: Unanswered-NACK retry period; defaults to twice
            the status interval.
        damage_capacity: Server damage-map entries before eviction.
        queue_limit_bytes: Console downlink buffer size (tail drops).
        registry: Telemetry sink threaded through every layer.
        obs: Observability context threaded through every layer
            (tracer + wire capture); defaults to the process-global one.
    """

    def __init__(
        self,
        framebuffer: FrameBuffer,
        sim: Optional[SimulationBackend] = None,
        network: Optional[Network] = None,
        rate_bps: float = ETHERNET_100,
        loss_rate: float = 0.0,
        seed: int = 0,
        console: Optional[Console] = None,
        console_address: str = "console",
        server_address: str = "server",
        status_interval: float = DEFAULT_STATUS_INTERVAL,
        nack_delay: float = 0.002,
        nack_timeout: Optional[float] = None,
        recovery_encoder: Optional[SlimEncoder] = None,
        damage_capacity: int = 1024,
        queue_limit_bytes: Optional[int] = None,
        registry: Optional[MetricsRegistry] = None,
        obs: Optional[ObsContext] = None,
    ) -> None:
        obs = obs if obs is not None else get_obs()
        self.obs = obs
        self.sim = sim if sim is not None else LocalBackend()
        self.network = network if network is not None else Network(
            self.sim, default_rate_bps=rate_bps, registry=registry, obs=obs
        )
        self.framebuffer = framebuffer
        self.console = console if console is not None else Console(
            framebuffer.width,
            framebuffer.height,
            sim=self.sim,
            address=console_address,
            registry=registry,
            obs=obs,
        )
        if nack_timeout is None:
            nack_timeout = 2 * status_interval
        self.console_channel = ConsoleChannel(
            self.console,
            self.network,
            server_address=server_address,
            nack_delay=nack_delay,
            nack_timeout=nack_timeout,
            registry=registry,
            obs=obs,
        )
        self.server_channel = ServerChannel(
            framebuffer,
            self.network,
            self.sim,
            address=server_address,
            console_address=console_address,
            recovery_encoder=recovery_encoder,
            damage_capacity=damage_capacity,
            status_interval=status_interval,
            registry=registry,
            obs=obs,
        )
        self.console_channel.attach(queue_limit_bytes=queue_limit_bytes)
        rng = np.random.default_rng(seed) if loss_rate > 0 else None
        self.server_channel.attach(loss_rate=loss_rate, rng=rng)

    # -- the driver-facing surface ---------------------------------------------
    def send_command(self, command) -> int:
        """The :class:`SlimDriver` ``send`` hook (server -> console)."""
        return self.server_channel.send_command(command)

    def make_driver(self, encoder: Optional[SlimEncoder] = None, **kwargs):
        """A :class:`SlimDriver` painting ``framebuffer`` into this channel."""
        from repro.server.slimdriver import SlimDriver

        return SlimDriver(
            encoder=encoder or SlimEncoder(materialize=True),
            framebuffer=self.framebuffer,
            send=self.send_command,
            obs=self.obs,
            **kwargs,
        )

    # -- running ----------------------------------------------------------------
    def run(self, max_events: Optional[int] = None) -> None:
        """Run the simulation until it drains (recovery included)."""
        self.sim.run(max_events=max_events)

    def run_until(self, deadline: float) -> None:
        self.sim.run_until(deadline)

    # -- state ------------------------------------------------------------------
    @property
    def converged(self) -> bool:
        """Console framebuffer is pixel-exact against the server's."""
        return self.framebuffer.equals(self.console.framebuffer)

    @property
    def resolved(self) -> bool:
        """Every sent seq is accounted for at the console."""
        return self.server_channel.converged

    @property
    def recoveries(self) -> int:
        """Region re-encodes performed in response to NACKs."""
        return self.server_channel.stats.recoveries

    @property
    def refreshes(self) -> int:
        """Full-screen fallback refreshes performed."""
        return self.server_channel.stats.refreshes
