"""The pinned benchmark scenarios (import to register).

Scenarios spanning the reproduction's hot paths, ordered roughly
inner-loop to full-system:

=======================  ================================================
``wire_roundtrip``       encode -> fragment -> reassemble -> decode of a
                         mixed command stream (per-message protocol cost)
``netsim_events``        bare discrete-event engine: timer chains only
``netsim_events_batch``  engine cohort trains: producers emit
                         same-timestamp batches via ``schedule_batch``
``switch_forward``       packets crossing the switched star (links +
                         switch), one ``network.send`` per packet
``switch_burst``         the same star driven with packet trains through
                         ``network.send_burst`` / ``ingress_burst``
``encode_damage``        paint + SLIM-encode display-model updates (the
                         server's per-update path)
``console_decode``       console-side decode + paint of a materialized
                         command stream (pixels onto the framebuffer)
``channel_lossy``        the reliable display channel under 15% loss:
                         damage chasing, NACKs, re-encodes, status
                         exchange
``yardstick_load``       the Figure 11 fabric-contention rig: yardstick
                         probe plus background load on a shared link
``e2e_session``          a complete session: driver -> wire -> fabric ->
                         console, verified pixel-exact
``fleet_scale``          the sharded fleet backend: a small campus across
                         two worker processes, lookahead barriers
=======================  ================================================

Every scenario is seeded and returns deterministic counts; end-to-end
scenarios additionally *assert* correctness (pixel equality), so a
perf run that silently broke the system fails loudly instead of
producing a fast-but-wrong number.
"""

from __future__ import annotations

import functools
from typing import Dict, List, Tuple

import numpy as np

from repro.console.console import Console
from repro.core import commands as cmd
from repro.core.encoder import SlimEncoder
from repro.core.wire import WireCodec
from repro.framebuffer.framebuffer import FrameBuffer
from repro.framebuffer.painter import (
    PaintKind,
    PaintOp,
    synth_glyph_bitmap,
    synth_image,
)
from repro.framebuffer.regions import Rect
from repro.loadgen.generator import NetworkLoadGenerator, TrafficPattern
from repro.loadgen.yardstick import NetworkYardstick
from repro.netsim.backend import LocalBackend
from repro.netsim.packet import Packet
from repro.netsim.transport import Endpoint, Network
from repro.perf.harness import ScenarioContext, scenario
from repro.server.slimdriver import SlimDriver
from repro.transport.channel import DisplayChannel
from repro.units import ETHERNET_100
from repro.workloads.apps import NETSCAPE
from repro.workloads.session import ResourceProfile

__all__: List[str] = []


def _mixed_commands(seed: int) -> List[cmd.Command]:
    """A materialized command mix exercising every encode path."""
    rng = np.random.default_rng(seed)
    set_rect = Rect(10, 10, 64, 48)
    text_rect = Rect(4, 4, 160, 104)
    commands: List[cmd.Command] = [
        cmd.SetCommand(
            rect=set_rect, data=synth_image(set_rect, int(rng.integers(1 << 30)))
        ),
        cmd.BitmapCommand(
            rect=text_rect,
            fg=(0, 0, 0),
            bg=(255, 255, 255),
            bitmap=synth_glyph_bitmap(text_rect, int(rng.integers(1 << 30)), 0.12),
        ),
        cmd.FillCommand(rect=Rect(0, 0, 200, 150), color=(52, 70, 90)),
        cmd.CopyCommand(rect=Rect(20, 20, 120, 90), src_x=20, src_y=33),
        cmd.CscsCommand(
            rect=Rect(0, 0, 64, 48),
            src_w=32,
            src_h=24,
            bits_per_pixel=16,
            payload=bytes(rng.integers(0, 256, size=32 * 24 * 2, dtype=np.uint8)),
        ),
        cmd.MouseEvent(x=100, y=80, buttons=1),
    ]
    return commands


@scenario("wire_roundtrip", title="Wire encode/fragment/reassemble/decode roundtrip")
def wire_roundtrip(ctx: ScenarioContext) -> Dict[str, float]:
    rounds = ctx.scale(full=400, quick=80)
    commands = _mixed_commands(ctx.seed)
    tx, rx = WireCodec(), WireCodec()
    messages = packets = wire_bytes = 0
    for _ in range(rounds):
        for command in commands:
            completed = None
            for datagram in tx.fragment(command):
                packets += 1
                wire_bytes += datagram.wire_nbytes
                completed = rx.accept(datagram)
            assert completed is not None, "message failed to reassemble"
            messages += 1
    return {"messages": messages, "packets": packets, "bytes": wire_bytes}


def _netsim_events_body(ctx: ScenarioContext) -> Dict[str, float]:
    total_events = ctx.scale(full=240_000, quick=50_000)
    chains = 64
    sim = LocalBackend()
    budget = {"left": total_events}

    def make_chain(period: float):
        def fire() -> None:
            if budget["left"] > 0:
                budget["left"] -= 1
                sim.schedule(period, fire)

        return fire

    for index in range(chains):
        # Coprime-ish periods so the heap sees interleaved timestamps,
        # not one sorted batch.
        sim.schedule(0.0, make_chain(0.0005 + 0.000013 * index))
    sim.run()
    return {"sim_events": sim.events_processed, "sim_seconds": sim.now}


@scenario("netsim_events", title="Discrete-event engine: timer-chain event loop")
def netsim_events(ctx: ScenarioContext) -> Dict[str, float]:
    return _netsim_events_body(ctx)


@scenario(
    "netsim_events_rec",
    title="Discrete-event engine with the flight recorder armed",
)
def netsim_events_rec(ctx: ScenarioContext) -> Dict[str, float]:
    # The guard for the recorder's happy-path claim: arming must not
    # disturb the engine's no-monitor fast loop (the rings only see
    # what taps feed them, and a bare engine taps nothing).
    from repro.obs import FlightRecorder, record_flight, use_obs

    recorder = FlightRecorder(out_dir=None, label="perf-netsim")
    with record_flight(recorder):
        with use_obs(recorder.obs_context()):
            return _netsim_events_body(ctx)


@scenario(
    "netsim_events_batch",
    title="Discrete-event engine: schedule_batch cohort trains",
)
def netsim_events_batch(ctx: ScenarioContext) -> Dict[str, float]:
    # The amortization counterpart of ``netsim_events``: the same event
    # volume, but producers hand the engine same-timestamp cohorts, so
    # the heap sees one entry (and the monitored loops one clock write)
    # per train instead of per event.
    total_events = ctx.scale(full=240_000, quick=50_000)
    burst = 32
    chains = 16
    sim = LocalBackend()
    budget = {"left": total_events}

    def member() -> None:
        pass

    def make_chain(period: float):
        def tick() -> None:
            left = budget["left"]
            if left <= 0:
                return
            n = burst if left >= burst else left
            budget["left"] = left - n
            sim.schedule_batch(period * 0.5, [member] * n)
            sim.schedule(period, tick)

        return tick

    for index in range(chains):
        sim.schedule(0.0, make_chain(0.0005 + 0.000013 * index))
    sim.run()
    assert budget["left"] == 0, "batch chains under-delivered events"
    return {"sim_events": sim.events_processed, "sim_seconds": sim.now}


@scenario("switch_forward", title="Switched star fabric: packet forwarding")
def switch_forward(ctx: ScenarioContext) -> Dict[str, float]:
    per_sender = ctx.scale(full=2500, quick=500)
    nodes = 8
    sim = LocalBackend()
    network = Network(sim, default_rate_bps=ETHERNET_100)
    addresses = [f"node{i}" for i in range(nodes)]
    for address in addresses:
        network.attach(Endpoint(address))

    def make_sender(src: str, dst: str, offset: float):
        remaining = {"left": per_sender}

        def send() -> None:
            if remaining["left"] <= 0:
                return
            remaining["left"] -= 1
            network.send(
                Packet(src=src, dst=dst, nbytes=1000, flow=f"{src}->{dst}")
            )
            sim.schedule(0.0004, send)

        sim.schedule(offset, send)

    for index, address in enumerate(addresses):
        make_sender(
            address, addresses[(index + 1) % nodes], offset=index * 0.00005
        )
    sim.run()
    packets = sum(
        network.endpoint(address).packets_received for address in addresses
    )
    assert packets == nodes * per_sender, "fabric dropped lossless traffic"
    return {
        "sim_events": sim.events_processed,
        "sim_seconds": sim.now,
        "packets": packets,
    }


@scenario(
    "switch_burst", title="Switched star fabric: packet-train burst transit"
)
def switch_burst(ctx: ScenarioContext) -> Dict[str, float]:
    # The burst-path counterpart of ``switch_forward``: the same star,
    # but each sender emits 8-packet trains through ``send_burst`` (and
    # the switch forwards them via ``ingress_burst`` semantics), with
    # packets drawn from the freelist.
    bursts_per_sender = ctx.scale(full=320, quick=64)
    burst = 8
    nodes = 8
    sim = LocalBackend()
    network = Network(sim, default_rate_bps=ETHERNET_100)
    addresses = [f"node{i}" for i in range(nodes)]
    for address in addresses:
        network.attach(Endpoint(address))

    def make_sender(src: str, dst: str, offset: float):
        remaining = {"left": bursts_per_sender}
        flow = f"{src}->{dst}"

        def send() -> None:
            if remaining["left"] <= 0:
                return
            remaining["left"] -= 1
            network.send_burst(
                [
                    Packet.acquire(src, dst, 1000, flow=flow)
                    for _ in range(burst)
                ]
            )
            sim.schedule(0.0004, send)

        sim.schedule(offset, send)

    for index, address in enumerate(addresses):
        make_sender(
            address, addresses[(index + 1) % nodes], offset=index * 0.00005
        )
    sim.run()
    packets = sum(
        network.endpoint(address).packets_received for address in addresses
    )
    assert packets == nodes * bursts_per_sender * burst, (
        "fabric dropped lossless burst traffic"
    )
    return {
        "sim_events": sim.events_processed,
        "sim_seconds": sim.now,
        "packets": packets,
    }


def _display_model(width: int, height: int):
    display = NETSCAPE.display_model()
    display.display_w, display.display_h = width, height
    display.display_area = width * height
    return display


@scenario("encode_damage", title="Server path: paint + SLIM-encode display updates")
def encode_damage(ctx: ScenarioContext) -> Dict[str, float]:
    updates = ctx.scale(full=220, quick=50)
    width, height = 640, 480
    framebuffer = FrameBuffer(width, height)
    driver = SlimDriver(
        encoder=SlimEncoder(materialize=True),
        framebuffer=framebuffer,
        track_baselines=False,
    )
    display = _display_model(width, height)
    rng = np.random.default_rng(ctx.seed)
    for index in range(updates):
        driver.update(0.0, display.sample_update(rng, seed=index))
    stats = driver.stats
    return {
        "updates": stats.updates,
        "commands": stats.commands,
        "pixels": stats.pixels,
        "bytes": stats.wire_bytes,
    }


@functools.lru_cache(maxsize=2)
def _decode_stream(quick: bool, seed: int) -> Tuple[cmd.DisplayCommand, ...]:
    """Materialized command stream for the decode scenario (cached so the
    timed iterations measure decode, not content synthesis)."""
    updates = 120 if quick else 400
    width, height = 640, 480
    framebuffer = FrameBuffer(width, height)
    encoder = SlimEncoder(materialize=True)
    display = _display_model(width, height)
    rng = np.random.default_rng(seed)
    commands: List[cmd.DisplayCommand] = []
    from repro.framebuffer.painter import Painter

    painter = Painter(framebuffer)
    for index in range(updates):
        for op in display.sample_update(rng, seed=index):
            painter.apply(op)
            commands.extend(encoder.encode_op(op, framebuffer))
    return tuple(commands)


@scenario("console_decode", title="Console path: decode + paint a command stream")
def console_decode(ctx: ScenarioContext) -> Dict[str, float]:
    commands = _decode_stream(ctx.quick, ctx.seed)
    console = Console(640, 480)
    pixels = 0
    for command in commands:
        console.process(command)
        pixels += command.pixels
    return {
        "commands": console.stats.commands_processed,
        "pixels_painted": pixels,
        # The decode cost model's simulated seconds: how much faster
        # than a real Sun Ray 1 the decode simulation runs.
        "sim_seconds": console.virtual_time,
    }


@scenario("channel_lossy", title="Reliable display channel under 15% loss")
def channel_lossy(ctx: ScenarioContext) -> Dict[str, float]:
    updates = ctx.scale(full=14, quick=6)
    width, height = 320, 240
    server_fb = FrameBuffer(width, height)
    channel = DisplayChannel(
        server_fb, loss_rate=0.15, seed=ctx.seed, nack_delay=0.002
    )
    driver = channel.make_driver(track_baselines=False)
    display = _display_model(width, height)
    rng = np.random.default_rng(ctx.seed + 1)
    for index in range(updates):
        driver.update(channel.sim.now, display.sample_update(rng, seed=index))
        channel.run()
    assert server_fb.equals(channel.console.framebuffer), (
        "lossy channel failed to converge pixel-exact"
    )
    server = channel.server_channel.stats
    console = channel.console_channel.stats
    return {
        "sim_events": channel.sim.events_processed,
        "sim_seconds": channel.sim.now,
        "messages": server.messages_sent,
        "bytes": server.wire_bytes,
        "nacks": console.nacks_sent,
        "recoveries": server.recoveries,
    }


def _synthetic_profile(index: int, rng: np.random.Generator) -> ResourceProfile:
    """A Netscape-intensity network profile without running a user study."""
    intervals = 40
    net_bytes = rng.integers(4_000, 60_000, size=intervals).tolist()
    return ResourceProfile(
        application="Netscape",
        user=f"perf{index}",
        interval=1.0,
        cpu=[0.05] * intervals,
        net_bytes=net_bytes,
        memory_mb=32.0,
    )


@scenario("yardstick_load", title="Fabric contention: yardstick + background users")
def yardstick_load(ctx: ScenarioContext) -> Dict[str, float]:
    n_users = ctx.scale(full=24, quick=8)
    sim_seconds = ctx.scale(full=20, quick=8)
    sim = LocalBackend()
    network = Network(sim, default_rate_bps=ETHERNET_100)
    yardstick = NetworkYardstick(
        sim, network, console_addr="console", server_addr="server", warmup=1.0
    )
    network.attach(
        Endpoint("console", on_receive=yardstick.handle_console_packet)
    )
    network.attach(
        Endpoint("server", on_receive=yardstick.handle_server_packet),
        queue_limit_bytes=512 * 1024,
    )
    network.attach(Endpoint("sink"))
    rng = np.random.default_rng(ctx.seed)
    generators = []
    for index in range(n_users):
        generator = NetworkLoadGenerator(
            sim,
            network,
            src="server",
            dst="sink",
            profile=_synthetic_profile(index, rng),
            pattern=TrafficPattern(updates_per_second=5.0, active_fraction=0.9),
            rng=np.random.default_rng(int(rng.integers(0, 2**63))),
            flow=f"bg{index}",
        )
        generator.start()
        generators.append(generator)
    yardstick.start()
    sim.run_until(float(sim_seconds))
    assert yardstick.rtts, "yardstick collected no samples"
    return {
        "sim_events": sim.events_processed,
        "sim_seconds": sim.now,
        "packets": sum(g.packets_emitted for g in generators)
        + len(yardstick.rtts) * 2,
        "rtt_samples": len(yardstick.rtts),
    }


def _e2e_session_body(ctx: ScenarioContext) -> Dict[str, float]:
    width, height = (320, 240) if ctx.quick else (640, 480)
    repeats = ctx.scale(full=3, quick=2)
    sim = LocalBackend()
    server_fb = FrameBuffer(width, height)
    channel = DisplayChannel(server_fb, sim=sim)
    driver = channel.make_driver(track_baselines=False)
    desktop = [
        PaintOp(PaintKind.FILL, Rect(0, 0, width, height), color=(52, 70, 90)),
        PaintOp(
            PaintKind.FILL,
            Rect(width // 16, height // 12, width // 2, height // 2),
            color=(255, 255, 255),
        ),
        PaintOp(
            PaintKind.TEXT,
            Rect(width // 16 + 8, height // 12 + 8, width // 2, height // 2),
            fg=(0, 0, 0),
            bg=(255, 255, 255),
            seed=ctx.seed,
            char_count=600,
        ),
        PaintOp(
            PaintKind.IMAGE,
            Rect(width // 2 + 16, height // 8, width // 4, height // 4),
            seed=ctx.seed + 1,
            uniform_fraction=0.2,
        ),
        PaintOp(
            PaintKind.COPY,
            Rect(width // 16 + 8, height // 12 + 8, width // 2, height // 2 - 13),
            src=Rect(width // 16 + 8, height // 12 + 21, width // 2, height // 2 - 13),
        ),
    ]
    pixels = 0
    for round_index in range(repeats):
        for op in desktop:
            driver.update(sim.now, [op])
            channel.run()
            pixels += op.pixels_changed
    assert server_fb.equals(channel.console.framebuffer), (
        "session ended with divergent framebuffers"
    )
    stats = driver.stats
    return {
        "sim_events": sim.events_processed,
        "sim_seconds": sim.now,
        "updates": stats.updates,
        "commands": stats.commands,
        "bytes": stats.wire_bytes,
        "pixels_painted": pixels,
    }


@scenario("e2e_session", title="Full session: driver -> wire -> fabric -> console")
def e2e_session(ctx: ScenarioContext) -> Dict[str, float]:
    return _e2e_session_body(ctx)


@scenario(
    "e2e_session_rec",
    title="Full session with the flight recorder armed (rings live)",
)
def e2e_session_rec(ctx: ScenarioContext) -> Dict[str, float]:
    # Same pixel-exact session, but every wire frame lands in the
    # byte-budgeted ring and every completed trace in the trace ring —
    # the real cost of arming the recorder on an observed run.
    from repro.obs import FlightRecorder, record_flight, use_obs

    recorder = FlightRecorder(out_dir=None, label="perf-e2e")
    with record_flight(recorder):
        with use_obs(recorder.obs_context()):
            return _e2e_session_body(ctx)


@scenario("wan_matrix", title="WAN adversity cell: cellular overload, static vs adaptive")
def wan_matrix(ctx: ScenarioContext) -> Dict[str, float]:
    from repro.experiments.wan_matrix import CellProbe
    from repro.netsim.profiles import get_profile

    profile = get_profile("cellular")
    seconds = float(ctx.scale(full=20, quick=8))
    demand = 2.0 * profile.down_rate_bps
    static = CellProbe(
        profile, demand, adaptive=False, seconds=seconds, seed=ctx.seed
    ).run()
    adaptive = CellProbe(
        profile, demand, adaptive=True, seconds=seconds, seed=ctx.seed
    ).run()
    assert adaptive.allocator.stats.demotions >= 1, (
        "adaptive cell failed to shed load under overload"
    )
    assert adaptive.downlink.stats.packets_dropped == 0, (
        "adaptive cell still overran the downlink queue"
    )
    return {
        "sim_events": static.sim.events_processed
        + adaptive.sim.events_processed,
        "sim_seconds": 2 * seconds,
        "static_drops": static.downlink.stats.packets_dropped,
        "demotions": adaptive.allocator.stats.demotions,
        "rtt_samples": len(static.yardstick.rtts)
        + len(adaptive.yardstick.rtts),
    }


@scenario("fleet_scale", title="Sharded fleet: campus day across 2 worker shards")
def fleet_scale(ctx: ScenarioContext) -> Dict[str, float]:
    from repro.experiments.fleet_scale import fleet_spec, run_fleet_sharded

    spec = fleet_spec(
        n_desktops=ctx.scale(full=2000, quick=500),
        n_workgroups=ctx.scale(full=32, quick=8),
        seed=ctx.seed,
        duration=ctx.scale(full=6, quick=2) * 3600.0,
    )
    aggregator, collection = run_fleet_sharded(spec, 2)
    expected_cells = spec.n_windows * spec.n_workgroups
    assert len(aggregator.cells) == expected_cells, (
        "fleet lost demand reports across the shard barrier"
    )
    samples = sum(result["samples"] for result in collection.results)
    return {
        "samples": samples,
        "cells": expected_cells,
        "desktops": spec.total_desktops(),
        "sim_seconds": spec.duration,
    }
