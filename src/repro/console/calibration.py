"""Reproduction of the Table 5 measurement methodology (Section 4.3).

The paper determined console protocol-processing costs by transmitting
command sequences "up to the point where the terminal cannot process the
transmitted commands and begins to drop them", then expressing the
observed sustained rates as a constant overhead per command plus an
incremental cost per pixel.

We do the same against the micro-op console model: for each command type
we probe the maximum sustained rate at a ladder of region sizes (binary
search over offered rate, watching the console's drop counter), convert
rates to per-command service times, and fit the two-parameter linear
model by least squares.  The fitted constants should land on Table 5 —
the micro-op model's extra per-row term is absorbed into the slope just
as real second-order hardware effects were absorbed by the paper's fit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ProtocolError
from repro.core import commands as cmd
from repro.core.commands import Opcode
from repro.core.costs import CostEntry, CostKey, SUN_RAY_1_COSTS
from repro.console.console import Console
from repro.console.microops import MicroOpModel
from repro.framebuffer.regions import Rect

#: Square region edge sizes probed per command (pixel counts span ~3
#: orders of magnitude, like the paper's "various command types and
#: sizes").
DEFAULT_EDGE_SIZES = (8, 16, 32, 64, 128, 256, 512)


def _probe_command(opcode: Opcode, edge: int, bits_per_pixel: int) -> cmd.DisplayCommand:
    """Build an accounting-only command of the given type and size."""
    rect = Rect(0, 0, edge, edge)
    if opcode == Opcode.SET:
        return cmd.SetCommand(rect=rect)
    if opcode == Opcode.BITMAP:
        return cmd.BitmapCommand(rect=rect)
    if opcode == Opcode.FILL:
        return cmd.FillCommand(rect=rect)
    if opcode == Opcode.COPY:
        return cmd.CopyCommand(rect=rect, src_x=0, src_y=0)
    if opcode == Opcode.CSCS:
        return cmd.CscsCommand(rect=rect, bits_per_pixel=bits_per_pixel)
    raise ProtocolError(f"not a display opcode: {opcode}")


def probe_sustained_rate(
    console: Console,
    command: cmd.DisplayCommand,
    rate_floor: float = 1.0,
    rate_ceiling: float = 1e7,
    iterations: int = 60,
) -> float:
    """Binary-search the highest command rate the console sustains.

    Mirrors the paper's ramp-until-drop experiment: at each candidate
    rate we ask whether the console keeps up; the bisection converges on
    the knee.
    """
    lo, hi = rate_floor, rate_ceiling
    if not console.offered_rate_sustainable(command, lo):
        raise ProtocolError("console cannot sustain even the floor rate")
    for _ in range(iterations):
        mid = (lo + hi) / 2.0
        if console.offered_rate_sustainable(command, mid):
            lo = mid
        else:
            hi = mid
    return lo


@dataclass(frozen=True)
class CalibrationResult:
    """Fitted linear cost model for one command type."""

    key: CostKey
    startup_ns: float
    per_pixel_ns: float
    residual_rms_ns: float
    samples: Tuple[Tuple[int, float], ...]  # (pixels, measured service ns)

    def as_entry(self) -> CostEntry:
        return CostEntry(self.startup_ns, self.per_pixel_ns)

    def error_vs(self, reference: CostEntry) -> Tuple[float, float]:
        """Relative error (startup, per-pixel) against a reference entry."""
        startup_err = abs(self.startup_ns - reference.startup_ns) / reference.startup_ns
        slope_err = abs(self.per_pixel_ns - reference.per_pixel_ns) / max(
            reference.per_pixel_ns, 1e-9
        )
        return startup_err, slope_err


def fit_linear_cost(samples: Sequence[Tuple[int, float]]) -> Tuple[float, float, float]:
    """Least-squares fit service_ns = startup + per_pixel * pixels.

    Returns (startup_ns, per_pixel_ns, residual_rms_ns).
    """
    if len(samples) < 2:
        raise ProtocolError("need at least two samples to fit a line")
    pixels = np.array([s[0] for s in samples], dtype=np.float64)
    times = np.array([s[1] for s in samples], dtype=np.float64)
    design = np.stack([np.ones_like(pixels), pixels], axis=1)
    coeffs, *_ = np.linalg.lstsq(design, times, rcond=None)
    startup, slope = float(coeffs[0]), float(coeffs[1])
    residuals = times - (startup + slope * pixels)
    rms = float(np.sqrt(np.mean(residuals**2)))
    return startup, slope, rms


def calibrate_command(
    key: CostKey,
    console: Optional[Console] = None,
    edges: Sequence[int] = DEFAULT_EDGE_SIZES,
) -> CalibrationResult:
    """Run the full probe-and-fit procedure for one command type."""
    if console is None:
        console = Console(width=1280, height=1024, timing=MicroOpModel())
    if isinstance(key, tuple):
        opcode, bpp = key
    else:
        opcode, bpp = key, 16
    samples: List[Tuple[int, float]] = []
    for edge in edges:
        command = _probe_command(opcode, edge, bpp)
        rate = probe_sustained_rate(console, command)
        service_ns = 1e9 / rate
        pixels = (
            command.source_pixels
            if isinstance(command, cmd.CscsCommand)
            else command.pixels
        )
        samples.append((pixels, service_ns))
    startup, slope, rms = fit_linear_cost(samples)
    return CalibrationResult(
        key=key,
        startup_ns=startup,
        per_pixel_ns=slope,
        residual_rms_ns=rms,
        samples=tuple(samples),
    )


def calibrate(
    console: Optional[Console] = None,
    keys: Optional[Sequence[CostKey]] = None,
) -> Dict[CostKey, CalibrationResult]:
    """Calibrate every Table 5 row; returns results keyed like the table."""
    if keys is None:
        keys = list(SUN_RAY_1_COSTS.keys())
    return {key: calibrate_command(key, console=console) for key in keys}


def calibration_report(
    results: Dict[CostKey, CalibrationResult]
) -> List[Tuple[str, float, float, float, float]]:
    """Rows of (name, fitted startup, fitted slope, paper startup, slope)."""
    rows = []
    for key, result in results.items():
        if isinstance(key, tuple):
            name = f"CSCS ({key[1]} bits/pixel)"
        else:
            name = key.name
        reference = SUN_RAY_1_COSTS[key]
        rows.append(
            (
                name,
                result.startup_ns,
                result.per_pixel_ns,
                reference.startup_ns,
                reference.per_pixel_ns,
            )
        )
    return rows
