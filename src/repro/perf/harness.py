"""Self-measurement harness: pinned scenarios timing the simulator itself.

The paper measures SLIM; this module measures the *reproduction* — how
fast the simulation executes on real hardware.  The ROADMAP's north star
("as fast as the hardware allows") is only checkable if every PR leaves
a perf datapoint behind, so the harness turns a set of pinned, seeded
scenarios into a ``BENCH_<git-sha>.json`` trajectory file
(:mod:`repro.perf.schema`) that :mod:`repro.tools.benchdiff` compares
across commits.

Design rules, learned from the usual benchmarking failure modes:

* **Pinned and seeded** — every scenario fixes its RNG seeds and
  workload sizes, so the work done is identical run to run; only the
  execution speed varies.
* **Median of N with warmup discard** — each scenario runs ``warmup``
  throwaway iterations (allocator/import/JIT-less cache warmth), then
  ``repeats`` measured ones; the reported value is the median, which a
  single scheduling hiccup cannot move.
* **Memory measured out of band** — tracemalloc slows execution several
  fold, so the timed samples run untraced and one extra pass (not
  timed) collects the allocation peak.
* **Counts vs rates** — scenarios return raw, deterministic *counts*
  (events, packets, pixels); the harness derives the per-second rates
  from its own wall-clock measurement.  Rates are the regression-gated
  metrics; counts are recorded as informational context (a count change
  means the workload changed, not that it got slower).
"""

from __future__ import annotations

import gc
import statistics
import sys
import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import ReproError

__all__ = [
    "Metric",
    "SCENARIOS",
    "ScenarioContext",
    "ScenarioRun",
    "ScenarioSpec",
    "measure_scenario",
    "rates_from_samples",
    "run_harness",
    "scenario",
]

#: Count key with a dedicated derived metric: simulated seconds advanced
#: by the scenario become ``sim_speedup`` (sim-seconds per wall-second).
SIM_SECONDS_KEY = "sim_seconds"


@dataclass(frozen=True)
class ScenarioContext:
    """Knobs a scenario sizes itself from.

    Attributes:
        quick: Reduced workload sizes (CI smoke; ~seconds per scenario).
        seed: Root seed; scenarios derive their RNG streams from it so
            the measured work is bit-identical across runs.
    """

    quick: bool = False
    seed: int = 17

    def scale(self, full: int, quick: int) -> int:
        """Pick the workload size for the current mode."""
        return quick if self.quick else full


@dataclass(frozen=True)
class ScenarioSpec:
    """A registered benchmark scenario.

    The function does a fixed amount of seeded work and returns raw
    counts (``{"sim_events": ..., "packets": ..., ...}``); the harness
    times it and derives rates.
    """

    name: str
    title: str
    fn: Callable[[ScenarioContext], Dict[str, float]]

    def __call__(self, ctx: ScenarioContext) -> Dict[str, float]:
        return self.fn(ctx)


#: Registered scenarios, in registration order (import
#: :mod:`repro.perf.scenarios` to populate).
SCENARIOS: Dict[str, ScenarioSpec] = {}


def scenario(name: str, *, title: str = ""):
    """Register a benchmark scenario (decorator)."""

    def decorate(fn: Callable[[ScenarioContext], Dict[str, float]]):
        if name in SCENARIOS:
            raise ReproError(f"perf scenario {name!r} already registered")
        SCENARIOS[name] = ScenarioSpec(
            name=name,
            title=title or (fn.__doc__ or name).strip().splitlines()[0],
            fn=fn,
        )
        return fn

    return decorate


@dataclass
class Metric:
    """One measured quantity of one scenario.

    Attributes:
        value: The reported (median) value.
        unit: Human-readable unit ("s", "1/s", "KiB", ...).
        higher_is_better: Regression direction for the comparator.
        compare: Whether :mod:`repro.tools.benchdiff` gates on this
            metric; informational metrics (raw counts, process RSS) are
            recorded but never fail a diff.
        samples: The per-repeat values the median was taken over.
    """

    value: float
    unit: str
    higher_is_better: bool
    compare: bool = True
    samples: List[float] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "value": self.value,
            "unit": self.unit,
            "higher_is_better": self.higher_is_better,
            "compare": self.compare,
            "samples": list(self.samples),
        }


@dataclass
class ScenarioRun:
    """The harness's measurement of one scenario."""

    name: str
    title: str
    repeats: int
    warmup: int
    metrics: Dict[str, Metric] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "title": self.title,
            "repeats": self.repeats,
            "warmup": self.warmup,
            "metrics": {k: m.to_dict() for k, m in self.metrics.items()},
        }


def rates_from_samples(
    samples: Sequence[tuple],
) -> Dict[str, Metric]:
    """Derive the metric set from ``(wall_seconds, counts)`` samples.

    Pure so the median/derivation logic is unit-testable without running
    a scenario: rates are computed per sample and then medianed (never
    median-count over median-time, which would mix repeats).
    """
    if not samples:
        raise ReproError("no samples to derive metrics from")
    walls = [wall for wall, _ in samples]
    metrics: Dict[str, Metric] = {
        "wall_seconds": Metric(
            value=statistics.median(walls),
            unit="s",
            higher_is_better=False,
            samples=list(walls),
        )
    }
    keys: List[str] = []
    for _, counts in samples:
        for key in counts:
            if key not in keys:
                keys.append(key)
    for key in keys:
        values = [float(counts.get(key, 0)) for _, counts in samples]
        metrics[key] = Metric(
            value=statistics.median(values),
            unit="",
            higher_is_better=True,
            compare=False,
            samples=values,
        )
        if key == SIM_SECONDS_KEY:
            rate_name, unit = "sim_speedup", "sim-s/s"
        else:
            rate_name, unit = f"{key}_per_sec", "1/s"
        rates = [
            float(counts.get(key, 0)) / wall if wall > 0 else 0.0
            for wall, counts in samples
        ]
        metrics[rate_name] = Metric(
            value=statistics.median(rates),
            unit=unit,
            higher_is_better=True,
            samples=rates,
        )
    return metrics


def _memory_pass(spec: ScenarioSpec, ctx: ScenarioContext) -> int:
    """One untimed run under tracemalloc; returns the allocation peak."""
    already_tracing = tracemalloc.is_tracing()
    if already_tracing:
        tracemalloc.reset_peak()
    else:
        tracemalloc.start()
    try:
        spec.fn(ctx)
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        if not already_tracing:
            tracemalloc.stop()
    return peak


def _rss_max_kib() -> Optional[float]:
    """Process high-water RSS in KiB (informational; not resettable)."""
    try:
        import resource
    except ImportError:  # non-POSIX
        return None
    ru_maxrss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS bytes.
    return ru_maxrss / 1024 if sys.platform == "darwin" else float(ru_maxrss)


def measure_scenario(
    spec: ScenarioSpec,
    ctx: ScenarioContext,
    repeats: int = 3,
    warmup: int = 1,
    measure_memory: bool = True,
) -> ScenarioRun:
    """Run one scenario ``warmup + repeats`` times and report medians."""
    if repeats < 1:
        raise ReproError(f"repeats must be >= 1, got {repeats}")
    if warmup < 0:
        raise ReproError(f"warmup cannot be negative, got {warmup}")
    for _ in range(warmup):
        spec.fn(ctx)
    samples = []
    for _ in range(repeats):
        gc.collect()
        started = time.perf_counter()
        counts = spec.fn(ctx)
        samples.append((time.perf_counter() - started, dict(counts)))
    metrics = rates_from_samples(samples)
    if measure_memory:
        peak = _memory_pass(spec, ctx)
        metrics["tracemalloc_peak_kib"] = Metric(
            value=peak / 1024,
            unit="KiB",
            higher_is_better=False,
            samples=[peak / 1024],
        )
    rss = _rss_max_kib()
    if rss is not None:
        metrics["rss_max_kib"] = Metric(
            value=rss,
            unit="KiB",
            higher_is_better=False,
            compare=False,
            samples=[rss],
        )
    return ScenarioRun(
        name=spec.name,
        title=spec.title,
        repeats=repeats,
        warmup=warmup,
        metrics=metrics,
    )


def run_harness(
    names: Optional[Sequence[str]] = None,
    repeats: int = 3,
    warmup: int = 1,
    quick: bool = False,
    seed: int = 17,
    measure_memory: bool = True,
    on_progress: Optional[Callable[[str], None]] = None,
) -> List[ScenarioRun]:
    """Measure the named scenarios (default: all registered, in order)."""
    selected = list(SCENARIOS) if names is None else list(names)
    unknown = [n for n in selected if n not in SCENARIOS]
    if unknown:
        raise ReproError(
            f"unknown perf scenarios: {', '.join(unknown)} "
            f"(available: {', '.join(SCENARIOS) or 'none registered'})"
        )
    runs: List[ScenarioRun] = []
    for name in selected:
        spec = SCENARIOS[name]
        if on_progress is not None:
            on_progress(f"{name}: running ...")
        started = time.perf_counter()
        run = measure_scenario(
            spec, ScenarioContext(quick=quick, seed=seed),
            repeats=repeats, warmup=warmup, measure_memory=measure_memory,
        )
        runs.append(run)
        if on_progress is not None:
            wall = run.metrics["wall_seconds"].value
            on_progress(
                f"{name}: {wall * 1000:.1f} ms/iter "
                f"(total {time.perf_counter() - started:.1f}s)"
            )
    return runs
