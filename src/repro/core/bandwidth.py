"""The console's network bandwidth allocation mechanism (Section 7).

Multiple senders — the X-server for the interactive session, video
libraries for multimedia streams, possibly on different servers — request
bandwidth from the display console based on their past needs.  The console
"sorts the requests in ascending order and grants them one at a time until
a request exceeds the available bandwidth, at which point all remaining
requests are granted a fair share of the unallocated bandwidth."  This
keeps high-demand multimedia from starving interactive traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import BandwidthError


@dataclass(frozen=True)
class Grant:
    """The allocator's answer for one client."""

    client_id: int
    requested_bps: float
    granted_bps: float

    @property
    def satisfied(self) -> bool:
        """True when the client received its full request."""
        return self.granted_bps >= self.requested_bps - 1e-9


class BandwidthAllocator:
    """Implements the Sun Ray 1 console's allocation policy.

    Args:
        capacity_bps: Total bandwidth the console can absorb, bits/second.
            The Sun Ray 1's limit is its 100 Mbps link (minus protocol
            processing ceilings, which the caller may fold in).
    """

    def __init__(self, capacity_bps: float) -> None:
        if capacity_bps <= 0:
            raise BandwidthError(f"capacity must be positive, got {capacity_bps}")
        self.capacity_bps = capacity_bps
        self._requests: Dict[int, float] = {}
        self._grants: Dict[int, Grant] = {}

    # -- request management -------------------------------------------------
    def request(self, client_id: int, bits_per_second: float) -> None:
        """Record (or update) a client's bandwidth request."""
        if bits_per_second < 0:
            raise BandwidthError(
                f"negative bandwidth request from client {client_id}"
            )
        self._requests[client_id] = float(bits_per_second)
        self._recompute()

    def withdraw(self, client_id: int) -> None:
        """Remove a client (session disconnected, stream stopped)."""
        if client_id not in self._requests:
            raise BandwidthError(f"unknown client {client_id}")
        del self._requests[client_id]
        self._grants.pop(client_id, None)
        self._recompute()

    def grant_for(self, client_id: int) -> Grant:
        """Return the current grant for one client."""
        try:
            return self._grants[client_id]
        except KeyError as exc:
            raise BandwidthError(f"no grant for client {client_id}") from exc

    def grants(self) -> List[Grant]:
        """All current grants, sorted by client id."""
        return [self._grants[cid] for cid in sorted(self._grants)]

    # -- the policy ----------------------------------------------------------
    def _recompute(self) -> None:
        """Re-run the paper's allocation policy over all requests."""
        self._grants.clear()
        if not self._requests:
            return
        # Ascending by requested rate; ties broken by client id for
        # determinism.
        order = sorted(self._requests.items(), key=lambda kv: (kv[1], kv[0]))
        remaining = self.capacity_bps
        index = 0
        while index < len(order):
            client_id, requested = order[index]
            if requested > remaining:
                break
            self._grants[client_id] = Grant(client_id, requested, requested)
            remaining -= requested
            index += 1
        leftovers = order[index:]
        if leftovers:
            share = remaining / len(leftovers)
            for client_id, requested in leftovers:
                self._grants[client_id] = Grant(client_id, requested, share)

    # -- reporting -----------------------------------------------------------
    @property
    def allocated_bps(self) -> float:
        """Sum of granted bandwidth."""
        return sum(g.granted_bps for g in self._grants.values())

    @property
    def unallocated_bps(self) -> float:
        """Capacity not granted to anyone."""
        return self.capacity_bps - self.allocated_bps

    def utilization(self) -> float:
        """Fraction of capacity granted (0..1)."""
        return self.allocated_bps / self.capacity_bps
