"""repro.telemetry — zero-dependency metrics and tracing.

The uniform instrumentation layer under every hot path: the network
fabric, the console decode loop, the server scheduler and SLIM driver,
and the encoder all report into an injectable
:class:`~repro.telemetry.metrics.MetricsRegistry` that defaults to a
process-global one.  The global registry starts as a
:class:`~repro.telemetry.metrics.NullRegistry`, so nothing is recorded
(and nothing is paid) until :func:`enable` — or
``python -m repro.experiments --metrics`` — turns it on.

Typical use::

    from repro import telemetry

    registry = telemetry.enable()
    ...  # run a simulation
    print(telemetry.render_report(registry))

Isolation for tests and side-by-side experiments::

    with telemetry.use_registry() as registry:
        ...  # components constructed here report into `registry`
"""

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    P2Quantile,
    disable,
    enable,
    get_registry,
    set_registry,
    use_registry,
)
from repro.telemetry.report import render_json, render_report
from repro.telemetry.trace import Span, Tracer, sample_periodically

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "P2Quantile",
    "Span",
    "Tracer",
    "disable",
    "enable",
    "get_registry",
    "render_json",
    "render_report",
    "sample_periodically",
    "set_registry",
    "use_registry",
]
