"""Figure 9: yardstick latency vs number of active users (one CPU).

The Section 6.1 experiment: a load generator plays back recorded
per-user CPU/memory profiles on a single-CPU server while the yardstick
application (30 ms of processing per event, 150 ms think time — more
demanding than any benchmark application at ~17 % of the CPU) measures
the scheduling delay added to each of its events.

Interactive performance was judged "noticeably poor" at ~100 ms of added
latency, which the paper reports is reached at roughly 10-12 Photoshop,
12-14 Netscape, 16-18 Frame Maker, or 34-36 PIM users — i.e. well past
full CPU utilization, because human-perceived response tolerates
substantial oversubscription.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.runner import (
    ExperimentConfig,
    ExperimentResult,
    experiment,
)
from repro.experiments import userstudy
from repro.loadgen.yardstick import CPU_YARDSTICK_BURST, CPU_YARDSTICK_THINK
from repro.netsim.backend import LocalBackend
from repro.server.scheduler import PeriodicTask, ProfilePlaybackTask, Scheduler
from repro.workloads.apps import BENCHMARK_APPS, AppProfile
from repro.workloads.session import ResourceProfile

#: The Figure 9 experiment's server: one 296 MHz CPU of the E4500 row in
#: Table 3 (profiles are already expressed in 296 MHz-CPU units).
DEFAULT_SIM_SECONDS = 90.0
DEFAULT_WARMUP_SECONDS = 10.0
#: "interactive performance was noticeably poor" at this added latency.
POOR_THRESHOLD = 0.100


def yardstick_latency(
    profiles: Sequence[ResourceProfile],
    n_users: int,
    num_cpus: int = 1,
    sim_seconds: float = DEFAULT_SIM_SECONDS,
    seed: int = 7,
    memory_mb: float = 4096.0,
    quantum: float = 0.010,
    burst_seconds: float = 0.020,
) -> float:
    """Mean added latency (s) of the yardstick among ``n_users`` players.

    ``burst_seconds`` is the granularity the background users' CPU
    demand arrives in — one application event's processing.  Use
    :meth:`AppProfile.typical_burst_seconds` for the app being played.
    """
    sim = LocalBackend()
    scheduler = Scheduler(
        sim, num_cpus=num_cpus, quantum=quantum, memory_mb=memory_mb
    )
    rng = np.random.default_rng(seed)
    yardstick = PeriodicTask(
        burst=CPU_YARDSTICK_BURST,
        think=CPU_YARDSTICK_THINK,
        warmup=DEFAULT_WARMUP_SECONDS,
    )
    scheduler.spawn(yardstick)
    for index in range(n_users):
        profile = profiles[index % len(profiles)]
        task = ProfilePlaybackTask(
            name=f"user{index}",
            profile_utilization=profile.cpu,
            interval=profile.interval,
            burst=burst_seconds,
            memory_mb=profile.memory_mb,
            rng=np.random.default_rng(rng.integers(0, 2**63)),
        )
        scheduler.spawn(task)
    sim.run_until(sim_seconds)
    return yardstick.mean_added_latency()


def latency_curve(
    app: AppProfile,
    user_counts: Sequence[int],
    num_cpus: int = 1,
    sim_seconds: float = DEFAULT_SIM_SECONDS,
    study_users: int = userstudy.DEFAULT_N_USERS,
) -> List[Tuple[int, float]]:
    """(n_users, mean added latency) pairs for one application."""
    _traces, profiles = userstudy.get_study(app, n_users=study_users)
    burst = app.typical_burst_seconds()
    return [
        (
            n,
            yardstick_latency(
                profiles,
                n,
                num_cpus=num_cpus,
                sim_seconds=sim_seconds,
                burst_seconds=burst,
            ),
        )
        for n in user_counts
    ]


def users_at_threshold(
    curve: Sequence[Tuple[int, float]], threshold: float = POOR_THRESHOLD
) -> Optional[float]:
    """Interpolated user count where added latency crosses ``threshold``."""
    prev_n, prev_lat = None, None
    for n, lat in curve:
        if lat >= threshold and prev_n is not None:
            if lat == prev_lat:
                return float(n)
            frac = (threshold - prev_lat) / (lat - prev_lat)
            return prev_n + frac * (n - prev_n)
        if lat >= threshold:
            return float(n)
        prev_n, prev_lat = n, lat
    return None


#: Sweeps sized to bracket the paper's crossing points.
DEFAULT_SWEEPS: Dict[str, Tuple[int, ...]] = {
    "Photoshop": (2, 6, 9, 12, 15, 18, 21),
    "Netscape": (2, 6, 10, 13, 15, 18),
    "FrameMaker": (4, 10, 15, 17, 20, 24),
    "PIM": (10, 20, 30, 34, 38, 44),
}

#: The paper's reported tolerable ranges.
PAPER_RANGES = {
    "Photoshop": (10, 12),
    "Netscape": (12, 14),
    "FrameMaker": (16, 18),
    "PIM": (34, 36),
}


@experiment("fig9", title="Yardstick added latency vs active users (1 CPU)", section="6.1")
def run(config: ExperimentConfig) -> ExperimentResult:
    sim_seconds = config.get("duration", DEFAULT_SIM_SECONDS)
    rows = []
    for name, app in BENCHMARK_APPS.items():
        curve = latency_curve(app, DEFAULT_SWEEPS[name], sim_seconds=sim_seconds)
        crossing = users_at_threshold(curve)
        lo, hi = PAPER_RANGES[name]
        rows.append(
            {
                "application": name,
                "users @100ms": round(crossing, 1) if crossing else ">max",
                "paper range": f"{lo}-{hi}",
                "curve": "  ".join(f"{n}:{lat * 1000:.0f}ms" for n, lat in curve),
            }
        )
    return ExperimentResult(
        experiment_id="fig9",
        title="Yardstick added latency vs active users (1 CPU)",
        rows=rows,
        notes=[
            "yardstick: 30ms processing / 150ms think; load generators "
            "play back the user-study CPU+memory profiles",
            "the CPU is significantly oversubscribed at the 100ms point — "
            "good interactive service survives full processor utilization",
        ],
    )

