"""Unit tests for shared constants and helpers."""

import pytest

from repro import units


class TestConstants:
    def test_display_geometry_matches_study(self):
        assert units.DISPLAY_WIDTH == 1280
        assert units.DISPLAY_HEIGHT == 1024
        assert units.DISPLAY_PIXELS == 1280 * 1024

    def test_perception_window(self):
        assert units.PERCEPTION_LOW == pytest.approx(0.050)
        assert units.PERCEPTION_HIGH == pytest.approx(0.150)

    def test_link_speeds(self):
        assert units.ETHERNET_100 == 100e6
        assert units.ETHERNET_1G == 1e9


class TestHelpers:
    def test_bits(self):
        assert units.bits(10) == 80

    def test_transmission_delay_50kb_at_100mbps(self):
        # The paper's example: a 50KB update takes ~4ms at 100Mbps.
        delay = units.transmission_delay(50_000, units.ETHERNET_100)
        assert delay == pytest.approx(0.004)

    def test_transmission_delay_invalid_rate(self):
        with pytest.raises(ValueError):
            units.transmission_delay(100, 0)

    def test_mbps(self):
        assert units.mbps(125_000) == pytest.approx(1.0)
