"""The allocation-free steady state (freelists + fast transit).

A warmed-up session must stop churning the allocator: packets come from
the :class:`~repro.netsim.packet.Packet` freelist, the fast transit
path's pending-credit records come from the link's record pools, and
everything else the fabric allocates per event is transient (net zero).
The guard is a tracemalloc diff over a steady-state slice of the same
end-to-end session the ``e2e_session`` perf scenario runs, filtered to
the netsim hot-path modules.
"""

import tracemalloc

from repro.framebuffer import FrameBuffer, PaintKind, PaintOp, Rect
from repro.netsim import packet as packet_module
from repro.netsim.packet import Packet
from repro.transport import DisplayChannel

#: Net surviving allocation blocks tolerated beyond the packet-pool
#: size.  A handful of O(1) live-state objects churn identity every
#: event (the floats behind running stats totals, the current heap
#: entries, pool list cells) and show up as "new" blocks even though
#: their count is constant; likewise each *pooled* packet holds the int
#: of its most recent ``packet_id``, allocated during the slice — that
#: term is O(pool size).  A real per-packet leak would instead scale
#: with the hundreds of packets the slice moves (asserted below).
NET_BLOCK_SLACK = 48


def _desktop_ops(width: int, height: int, seed: int):
    return [
        PaintOp(PaintKind.FILL, Rect(0, 0, width, height), color=(52, 70, 90)),
        PaintOp(
            PaintKind.TEXT,
            Rect(8, 8, width // 2, height // 2),
            fg=(0, 0, 0),
            bg=(255, 255, 255),
            seed=seed,
            char_count=200,
        ),
        # A noisy full-screen image: incompressible pixels fragment into
        # a long SET train, so the slice moves real packet volume.
        PaintOp(
            PaintKind.IMAGE,
            Rect(0, 0, width, height),
            seed=seed + 1,
            uniform_fraction=0.0,
        ),
    ]


def _run_slice(channel, driver, ops, rounds: int) -> None:
    for _ in range(rounds):
        for op in ops:
            driver.update(channel.sim.now, [op])
            channel.run()


def test_warmed_session_slice_is_allocation_free():
    width, height = 160, 120
    server_fb = FrameBuffer(width, height)
    channel = DisplayChannel(server_fb)
    driver = channel.make_driver(track_baselines=False)
    ops = _desktop_ops(width, height, seed=5)

    # Warm-up: primes the packet freelist, the link record pools, the
    # engine queue's backing list, and every lazily-built code path.
    _run_slice(channel, driver, ops, rounds=3)
    assert packet_module._pool, "warm-up never returned a packet to the pool"
    pool_before = len(packet_module._pool)

    netsim_filters = [
        tracemalloc.Filter(True, "*/repro/netsim/packet.py"),
        tracemalloc.Filter(True, "*/repro/netsim/link.py"),
        tracemalloc.Filter(True, "*/repro/netsim/engine.py"),
        tracemalloc.Filter(True, "*/repro/netsim/switch.py"),
    ]
    packets_before = channel.network.uplink("server").stats.packets_sent
    tracemalloc.start()
    try:
        before = tracemalloc.take_snapshot().filter_traces(netsim_filters)
        _run_slice(channel, driver, ops, rounds=5)
        after = tracemalloc.take_snapshot().filter_traces(netsim_filters)
    finally:
        tracemalloc.stop()

    packets_moved = (
        channel.network.uplink("server").stats.packets_sent - packets_before
    )
    assert packets_moved > 200, "slice did not exercise real traffic"
    net_blocks = sum(
        diff.count_diff for diff in after.compare_to(before, "filename")
    )
    budget = len(packet_module._pool) + NET_BLOCK_SLACK
    assert net_blocks <= budget, (
        f"steady-state slice leaked {net_blocks} allocation blocks "
        f"(budget {budget}) across {packets_moved} packets in the netsim "
        "hot path (freelists not recycling?)"
    )
    # The pool really cycled: the steady state reuses the warmed packets
    # rather than growing the freelist further.
    assert len(packet_module._pool) == pool_before
    assert server_fb.equals(channel.console.framebuffer)


def test_release_caps_pool_and_clears_payload():
    marker = object()
    packet = Packet.acquire("a", "b", 100, payload=marker)
    assert packet.pooled
    packet.release()
    assert not packet.pooled
    assert packet.payload is None
    # Double release is a no-op (flag already cleared).
    before = len(packet_module._pool)
    packet.release()
    assert len(packet_module._pool) == before
    # Plain constructor packets never enter the pool.
    plain = Packet(src="a", dst="b", nbytes=10)
    plain.release()
    assert plain not in packet_module._pool
