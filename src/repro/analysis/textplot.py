"""Terminal plotting for the reproduction's figures.

The paper's figures are mostly cumulative distributions and latency
curves; this module renders both as fixed-width ASCII so experiments can
be *seen* without a plotting stack (the repository deliberately has no
matplotlib dependency).  Used by ``examples/paper_figures.py``.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.analysis.cdf import Cdf

#: Glyphs assigned to successive series in a multi-series plot.
SERIES_GLYPHS = "*o+x#@%&"

#: Density ramp for sparklines and heatstrips, light to heavy.  Pure
#: ASCII on purpose: the dashboard must survive dumb terminals and CI
#: logs where the Unicode block elements render as tofu.
DENSITY_RAMP = " .:-=+*#%@"


def _log_ticks(lo: float, hi: float) -> List[float]:
    """Decade ticks covering [lo, hi]."""
    if lo <= 0:
        raise ReproError("log axis requires positive values")
    first = math.floor(math.log10(lo))
    last = math.ceil(math.log10(hi))
    return [10.0**e for e in range(first, last + 1)]


def render_cdf(
    cdfs: Dict[str, Cdf],
    width: int = 64,
    height: int = 16,
    log_x: bool = True,
    x_label: str = "",
) -> str:
    """Render one or more CDFs as an ASCII chart.

    Args:
        cdfs: name -> CDF; each gets its own glyph.
        width: Plot area width in characters.
        height: Plot area height in rows (y spans 0..100 %).
        log_x: Use a log10 x-axis (the paper's figures mostly do).
        x_label: Axis caption.
    """
    if not cdfs:
        raise ReproError("nothing to plot")
    if width < 8 or height < 4:
        raise ReproError("plot area too small")
    lo = min(max(c.min, 1e-12) for c in cdfs.values())
    hi = max(c.max for c in cdfs.values())
    if log_x:
        # Cap the span at six decades so zero-adjacent samples don't
        # stretch the axis into unreadability.
        lo = max(lo, hi / 1e6)
    if hi <= lo:
        hi = lo * 10 if log_x else lo + 1.0

    def x_of(value: float) -> int:
        if log_x:
            value = max(value, lo)
            frac = (math.log10(value) - math.log10(lo)) / (
                math.log10(hi) - math.log10(lo)
            )
        else:
            frac = (value - lo) / (hi - lo)
        return min(width - 1, max(0, int(round(frac * (width - 1)))))

    grid = [[" "] * width for _ in range(height)]
    for index, (name, cdf) in enumerate(cdfs.items()):
        glyph = SERIES_GLYPHS[index % len(SERIES_GLYPHS)]
        for column in range(width):
            if log_x:
                x_value = 10 ** (
                    math.log10(lo)
                    + column / (width - 1) * (math.log10(hi) - math.log10(lo))
                )
            else:
                x_value = lo + column / (width - 1) * (hi - lo)
            fraction = cdf.fraction_below(x_value)
            row = height - 1 - min(
                height - 1, int(round(fraction * (height - 1)))
            )
            if grid[row][column] == " ":
                grid[row][column] = glyph

    lines: List[str] = []
    for row_index, row in enumerate(grid):
        fraction = 1.0 - row_index / (height - 1)
        label = f"{fraction * 100:3.0f}% |"
        lines.append(label + "".join(row))
    lines.append("     +" + "-" * width)
    if log_x:
        ticks = [t for t in _log_ticks(lo, hi) if lo <= t <= hi * 1.01]
        tick_line = [" "] * (width + 14)
        last_end = -2
        for tick in ticks:
            pos = 6 + x_of(tick)
            text = f"{tick:g}"
            if pos <= last_end + 1:
                continue  # would collide with the previous label
            for offset, ch in enumerate(text):
                if pos + offset < len(tick_line):
                    tick_line[pos + offset] = ch
            last_end = pos + len(text)
        lines.append("".join(tick_line).rstrip())
    if x_label:
        lines.append(f"      {x_label}")
    legend = "      " + "   ".join(
        f"{SERIES_GLYPHS[i % len(SERIES_GLYPHS)]} {name}"
        for i, name in enumerate(cdfs)
    )
    lines.append(legend)
    return "\n".join(lines)


def _ramp_glyph(value: float, lo: float, hi: float) -> str:
    """Map a value onto the density ramp; None-safe callers filter first."""
    if hi <= lo:
        return DENSITY_RAMP[-1] if value > lo else DENSITY_RAMP[0]
    frac = (value - lo) / (hi - lo)
    index = int(round(frac * (len(DENSITY_RAMP) - 1)))
    return DENSITY_RAMP[min(len(DENSITY_RAMP) - 1, max(0, index))]


def render_sparkline(
    values: Sequence[float],
    width: int = 60,
    lo: Optional[float] = None,
    hi: Optional[float] = None,
) -> str:
    """One-row density sparkline for a numeric series.

    Values are resampled onto ``width`` columns (mean per column) and
    mapped onto :data:`DENSITY_RAMP`.  ``lo``/``hi`` pin the scale so
    several sparklines can share one axis; they default to the series'
    own range.
    """
    if not values:
        return " " * width
    if lo is None:
        lo = min(values)
    if hi is None:
        hi = max(values)
    columns: List[str] = []
    n = len(values)
    for col in range(width):
        start = col * n // width
        end = max(start + 1, (col + 1) * n // width)
        chunk = values[start:end]
        columns.append(_ramp_glyph(sum(chunk) / len(chunk), lo, hi))
    return "".join(columns)


def render_heatstrip(
    rows: Dict[str, Sequence[float]],
    width: int = 60,
    lo: Optional[float] = None,
    hi: Optional[float] = None,
) -> str:
    """Stacked sparklines on a shared scale — one labelled row per
    series, rendered like a heat map strip chart."""
    if not rows:
        raise ReproError("nothing to plot")
    pooled = [v for values in rows.values() for v in values]
    if pooled:
        if lo is None:
            lo = min(pooled)
        if hi is None:
            hi = max(pooled)
    label_width = max(len(name) for name in rows)
    lines = [
        f"{name:<{label_width}} |{render_sparkline(values, width, lo, hi)}|"
        for name, values in rows.items()
    ]
    if pooled:
        lines.append(
            f"{'':{label_width}}  scale {lo:g}..{hi:g} "
            f"({DENSITY_RAMP[0]!r} low, {DENSITY_RAMP[-1]!r} high)"
        )
    return "\n".join(lines)


def render_series(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render (x, y) series — e.g. the Figure 9 latency curves."""
    if not series:
        raise ReproError("nothing to plot")
    points = [p for s in series.values() for p in s]
    if not points:
        raise ReproError("series are empty")
    x_lo = min(p[0] for p in points)
    x_hi = max(p[0] for p in points)
    y_lo = 0.0
    y_hi = max(p[1] for p in points) or 1.0
    if x_hi <= x_lo:
        x_hi = x_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, pts) in enumerate(series.items()):
        glyph = SERIES_GLYPHS[index % len(SERIES_GLYPHS)]
        for x, y in pts:
            col = min(width - 1, int(round((x - x_lo) / (x_hi - x_lo) * (width - 1))))
            row = height - 1 - min(
                height - 1, int(round((y - y_lo) / (y_hi - y_lo) * (height - 1)))
            )
            grid[row][col] = glyph

    lines = []
    for row_index, row in enumerate(grid):
        value = y_hi * (1.0 - row_index / (height - 1))
        lines.append(f"{value:8.3g} |" + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(f"{'':9}{x_lo:<10g}{'':{max(0, width - 20)}}{x_hi:>10g}")
    caption = []
    if x_label:
        caption.append(f"x: {x_label}")
    if y_label:
        caption.append(f"y: {y_label}")
    if caption:
        lines.append("      " + "; ".join(caption))
    lines.append(
        "      " + "   ".join(
            f"{SERIES_GLYPHS[i % len(SERIES_GLYPHS)]} {name}"
            for i, name in enumerate(series)
        )
    )
    return "\n".join(lines)
