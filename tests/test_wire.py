"""Unit tests for the binary wire format and fragmentation."""

import numpy as np
import pytest

from repro.core import commands as cmd
from repro.core import wire
from repro.core.wire import (
    Datagram,
    MTU_PAYLOAD,
    WireCodec,
    decode_message,
    encode_message,
    message_wire_nbytes,
    pack_bits,
    unpack_bits,
)
from repro.errors import WireFormatError
from repro.framebuffer import Rect


def roundtrip(message):
    blob = encode_message(message, seq=42)
    decoded, seq = decode_message(blob)
    assert seq == 42
    return decoded


class TestBitPacking:
    def test_roundtrip_various_widths(self, rng):
        for bits in range(1, 9):
            values = rng.integers(0, 1 << bits, size=100, dtype=np.uint8)
            packed = pack_bits(values, bits)
            assert len(packed) == (100 * bits + 7) // 8
            out = unpack_bits(packed, 100, bits)
            assert np.array_equal(out, values)

    def test_value_too_large_rejected(self):
        with pytest.raises(WireFormatError):
            pack_bits(np.array([8], dtype=np.uint8), 3)

    def test_short_stream_rejected(self):
        with pytest.raises(WireFormatError):
            unpack_bits(b"\x00", 100, 4)

    def test_invalid_width(self):
        with pytest.raises(WireFormatError):
            pack_bits(np.zeros(4, dtype=np.uint8), 9)
        with pytest.raises(WireFormatError):
            unpack_bits(b"\x00", 1, 0)


class TestMessageRoundtrips:
    def test_fill(self):
        original = cmd.FillCommand(rect=Rect(3, 4, 10, 12), color=(9, 8, 7))
        assert roundtrip(original) == original

    def test_copy(self):
        original = cmd.CopyCommand(rect=Rect(10, 20, 30, 40), src_x=5, src_y=6)
        assert roundtrip(original) == original

    def test_set_pixels_exact(self, rng):
        rect = Rect(0, 0, 12, 7)
        data = rng.integers(0, 256, size=(7, 12, 3), dtype=np.uint8)
        decoded = roundtrip(cmd.SetCommand(rect=rect, data=data))
        assert decoded.rect == rect
        assert np.array_equal(decoded.data, data)

    def test_bitmap_exact(self, rng):
        rect = Rect(2, 2, 19, 5)  # odd width exercises row padding
        bitmap = rng.random((5, 19)) < 0.3
        original = cmd.BitmapCommand(
            rect=rect, fg=(1, 2, 3), bg=(4, 5, 6), bitmap=bitmap
        )
        decoded = roundtrip(original)
        assert decoded.fg == (1, 2, 3)
        assert decoded.bg == (4, 5, 6)
        assert np.array_equal(decoded.bitmap, bitmap)

    def test_cscs_payload_preserved(self):
        rect = Rect(0, 0, 16, 8)
        payload = bytes(cmd.cscs_plane_bytes(16, 8, 12))
        original = cmd.CscsCommand(rect=rect, bits_per_pixel=12, payload=payload)
        decoded = roundtrip(original)
        assert decoded.bits_per_pixel == 12
        assert decoded.payload == payload

    def test_key_event(self):
        assert roundtrip(cmd.KeyEvent(code=0x1234, pressed=True)) == cmd.KeyEvent(
            code=0x1234, pressed=True
        )

    def test_mouse_event(self):
        original = cmd.MouseEvent(x=1279, y=1023, buttons=5)
        assert roundtrip(original) == original

    def test_audio(self):
        assert roundtrip(cmd.AudioData(nbytes=100)).nbytes == 100

    def test_status(self):
        assert roundtrip(cmd.StatusMessage(kind=2, value=99)) == cmd.StatusMessage(
            kind=2, value=99
        )

    def test_bandwidth_request_kbps_precision(self):
        decoded = roundtrip(cmd.BandwidthRequest(client_id=7, bits_per_second=2_000_000))
        assert decoded.client_id == 7
        assert decoded.bits_per_second == 2_000_000

    def test_declared_size_matches_encoding(self):
        messages = [
            cmd.FillCommand(rect=Rect(0, 0, 5, 5), color=(1, 1, 1)),
            cmd.CopyCommand(rect=Rect(0, 0, 5, 5), src_x=1, src_y=1),
            cmd.SetCommand(rect=Rect(0, 0, 5, 5)),
            cmd.BitmapCommand(rect=Rect(0, 0, 13, 5)),
            cmd.CscsCommand(rect=Rect(0, 0, 10, 10), bits_per_pixel=8),
            cmd.KeyEvent(code=1, pressed=False),
            cmd.MouseEvent(x=1, y=2, buttons=0),
            cmd.StatusMessage(),
        ]
        for message in messages:
            encoded = encode_message(message, 0)
            assert len(encoded) == wire.HEADER_BYTES + message.payload_nbytes()


class TestDecodeErrors:
    def test_bad_magic(self):
        blob = bytearray(encode_message(cmd.StatusMessage(), 0))
        blob[0:2] = b"XX"
        with pytest.raises(WireFormatError):
            decode_message(bytes(blob))

    def test_bad_version(self):
        blob = bytearray(encode_message(cmd.StatusMessage(), 0))
        blob[2] = 99
        with pytest.raises(WireFormatError):
            decode_message(bytes(blob))

    def test_unknown_opcode(self):
        blob = bytearray(encode_message(cmd.StatusMessage(), 0))
        blob[3] = 200
        with pytest.raises(WireFormatError):
            decode_message(bytes(blob))

    def test_truncated_header(self):
        with pytest.raises(WireFormatError):
            decode_message(b"SL")

    def test_length_mismatch(self):
        blob = encode_message(cmd.StatusMessage(), 0)
        with pytest.raises(WireFormatError):
            decode_message(blob + b"extra")

    def test_truncated_set_body(self):
        blob = encode_message(cmd.SetCommand(rect=Rect(0, 0, 4, 4)), 0)
        truncated = blob[: wire.HEADER_BYTES + 8 + 10]
        with pytest.raises(WireFormatError):
            decode_message(
                truncated[: wire.HEADER_BYTES]
                .replace(blob[:wire.HEADER_BYTES], blob[:wire.HEADER_BYTES])
                + truncated[wire.HEADER_BYTES :]
            )


class TestFragmentation:
    def test_small_message_single_fragment(self):
        codec = WireCodec()
        frags = codec.fragment(cmd.FillCommand(rect=Rect(0, 0, 4, 4)))
        assert len(frags) == 1
        assert frags[0].count == 1

    def test_large_message_fragments(self):
        codec = WireCodec()
        message = cmd.SetCommand(rect=Rect(0, 0, 100, 100))  # 30KB
        frags = codec.fragment(message)
        assert len(frags) > 1
        assert all(len(f.payload) <= MTU_PAYLOAD for f in frags)
        assert frags[0].count == len(frags)

    def test_sequence_numbers_increase(self):
        codec = WireCodec()
        a = codec.fragment(cmd.StatusMessage())
        b = codec.fragment(cmd.StatusMessage())
        assert b[0].seq == a[0].seq + 1

    def test_reassembly_in_order(self, rng):
        tx, rx = WireCodec(), WireCodec()
        data = rng.integers(0, 256, size=(50, 60, 3), dtype=np.uint8)
        message = cmd.SetCommand(rect=Rect(0, 0, 60, 50), data=data)
        frags = tx.fragment(message)
        results = [rx.accept(f) for f in frags]
        assert all(r is None for r in results[:-1])
        decoded, _ = results[-1]
        assert np.array_equal(decoded.data, data)

    def test_reassembly_out_of_order(self, rng):
        tx, rx = WireCodec(), WireCodec()
        data = rng.integers(0, 256, size=(40, 60, 3), dtype=np.uint8)
        frags = tx.fragment(cmd.SetCommand(rect=Rect(0, 0, 60, 40), data=data))
        order = rng.permutation(len(frags))
        result = None
        for index in order:
            out = rx.accept(frags[index])
            if out is not None:
                result = out
        assert result is not None
        assert np.array_equal(result[0].data, data)

    def test_duplicate_fragments_harmless(self):
        tx, rx = WireCodec(), WireCodec()
        frags = tx.fragment(cmd.SetCommand(rect=Rect(0, 0, 60, 40)))
        rx.accept(frags[0])
        rx.accept(frags[0])  # replayed
        result = None
        for f in frags[1:]:
            out = rx.accept(f)
            if out is not None:
                result = out
        assert result is not None

    def test_interleaved_messages(self):
        tx, rx = WireCodec(), WireCodec()
        f1 = tx.fragment(cmd.SetCommand(rect=Rect(0, 0, 60, 40)))
        f2 = tx.fragment(cmd.SetCommand(rect=Rect(0, 0, 30, 30)))
        completed = []
        for pair in zip(f2, f1):
            for frag in pair:
                out = rx.accept(frag)
                if out is not None:
                    completed.append(out[1])
        for frag in f1[len(f2):]:
            out = rx.accept(frag)
            if out is not None:
                completed.append(out[1])
        assert sorted(completed) == [f1[0].seq, f2[0].seq]

    def test_drop_partial(self):
        tx, rx = WireCodec(), WireCodec()
        frags = tx.fragment(cmd.SetCommand(rect=Rect(0, 0, 60, 40)))
        rx.accept(frags[0])
        assert rx.pending_messages() == 1
        rx.drop_partial(frags[0].seq)
        assert rx.pending_messages() == 0

    def test_datagram_serialization(self):
        d = Datagram(seq=7, index=1, count=3, payload=b"hello")
        back = Datagram.from_bytes(d.to_bytes())
        assert back == d

    def test_datagram_bad_indices(self):
        d = Datagram(seq=7, index=3, count=3, payload=b"x")
        with pytest.raises(WireFormatError):
            Datagram.from_bytes(d.to_bytes())

    def test_wire_nbytes_counts_per_datagram_overhead(self):
        small = cmd.FillCommand(rect=Rect(0, 0, 4, 4))
        assert message_wire_nbytes(small) == wire.HEADER_BYTES + 11 + 36
        big = cmd.SetCommand(rect=Rect(0, 0, 100, 100))
        total = wire.HEADER_BYTES + big.payload_nbytes()
        ndatagrams = -(-total // MTU_PAYLOAD)
        assert message_wire_nbytes(big) == total + 36 * ndatagrams

    def test_accounting_only_encoding_has_right_size(self):
        message = cmd.BitmapCommand(rect=Rect(0, 0, 13, 7))
        encoded = encode_message(message, 0)
        assert len(encoded) == wire.HEADER_BYTES + message.payload_nbytes()
