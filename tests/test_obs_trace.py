"""Causal update tracing, wire capture, and the analyzer toolchain.

The headline invariant (DESIGN.md section 9): on a lossy fabric, every
completed update's stage breakdown — encode / queueing / serialization /
switch / decode / paint (+ resend_wait for recovered updates) — sums to
the observed end-to-end simulated latency *exactly*, because the stages
telescope over the interval by construction.  Also covered: the
``.slimcap`` capture roundtrip, Chrome trace-event export validity, the
analyzer CLI, and the zero-overhead guarantee when observability is off.
"""

import json
import tracemalloc

import numpy as np
import pytest

from repro.framebuffer import FrameBuffer, PaintKind, PaintOp, Rect
from repro.obs import (
    STAGES,
    ObsContext,
    SlimcapReader,
    SlimcapWriter,
    TraceCollector,
    chrome_trace_events,
    get_obs,
    is_slimcap,
    stage_percentiles,
    use_obs,
)
from repro.obs.capture import KIND_FRAME, KIND_LOSS
from repro.tools import slimcap as slimcap_tool
from repro.tools.replay import replay, session_from_capture
from repro.transport import DisplayChannel


def run_session(
    obs, loss_rate=0.08, seed=3, n_updates=30, size=(256, 256), spacing=0.004
):
    """Drive a paced FILL workload through a DisplayChannel under ``obs``."""
    with use_obs(obs) if obs is not None else _null():
        fb = FrameBuffer(*size)
        channel = DisplayChannel(fb, loss_rate=loss_rate, seed=seed)
        driver = channel.make_driver(track_baselines=False)
        rng = np.random.default_rng(0)
        t = 0.0
        for i in range(n_updates):
            channel.sim.run_until(t)
            ops = [
                PaintOp(
                    PaintKind.FILL,
                    Rect(
                        int(rng.integers(0, size[0] - 32)),
                        int(rng.integers(0, size[1] - 32)),
                        24,
                        24,
                    ),
                    color=(i * 7 % 256, 30, 40),
                )
            ]
            driver.update(channel.sim.now, ops)
            t += spacing
        channel.run()
    return channel


class _null:
    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


@pytest.fixture
def lossy_traced():
    """A lossy traced session known (by seed) to exercise recovery."""
    tracer = TraceCollector()
    channel = run_session(ObsContext(tracer=tracer))
    return channel, tracer


class TestCausalBreakdown:
    def test_every_update_breakdown_sums_to_end_to_end(self, lossy_traced):
        channel, tracer = lossy_traced
        assert channel.converged and channel.resolved
        updates = tracer.completed_updates()
        assert len(updates) == 30  # every update accounted for, loss included
        for update in updates:
            breakdown = update.breakdown()
            assert breakdown is not None
            assert set(STAGES) <= set(breakdown)
            assert sum(breakdown.values()) == pytest.approx(
                update.end_to_end, abs=1e-12
            )

    def test_recovered_updates_surface_resend_wait(self, lossy_traced):
        channel, tracer = lossy_traced
        assert channel.recoveries > 0
        recovered = [
            u for u in tracer.completed_updates()
            if u.breakdown()["resend_wait"] > 0
        ]
        assert recovered, "seed 3 must exercise the recovery path"
        for update in recovered:
            # The NACK round-trip dominates a recovered update.
            assert update.breakdown()["resend_wait"] > 0.001
        # Losses mark the original message superseded, not painted.
        superseded = [t for t in tracer.messages if t.superseded]
        assert superseded
        assert all(t.painted_at is None for t in superseded)

    def test_message_stages_partition_paint_interval(self, lossy_traced):
        _, tracer = lossy_traced
        painted = [
            t for t in tracer.completed_messages() if t.painted_at is not None
        ]
        assert painted
        for trace in painted:
            assert sum(trace.stages.values()) == pytest.approx(
                trace.painted_at - trace.update_start, abs=1e-12
            )
            assert trace.stages["serialization"] > 0
            assert trace.stages["switch"] > 0
            assert trace.stages["decode"] > 0

    def test_stage_percentiles_accepts_traces_and_dicts(self, lossy_traced):
        _, tracer = lossy_traced
        completed = tracer.completed_messages()
        from_objects = stage_percentiles(completed)
        from_dicts = stage_percentiles([t.to_dict() for t in completed])
        assert from_objects == from_dicts
        assert "FILL" in from_objects
        fill = from_objects["FILL"]
        assert fill["end_to_end"]["count"] >= 30
        assert fill["end_to_end"]["p50"] > 0


class TestChromeTrace:
    def test_export_is_valid_and_contiguous(self, lossy_traced, tmp_path):
        _, tracer = lossy_traced
        document = chrome_trace_events(tracer.completed_messages())
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(document))
        loaded = json.loads(path.read_text())
        assert loaded["displayTimeUnit"] == "ms"
        events = loaded["traceEvents"]
        assert events
        lanes = {}
        for event in events:
            assert event["ph"] in ("X", "M")
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            if event["ph"] == "X":
                assert event["name"] in STAGES
                assert event["dur"] >= 0
                lanes.setdefault(event["tid"], []).append(event)
        for lane in lanes.values():
            # Stages within a lane tile the interval without gaps.
            for a, b in zip(lane, lane[1:]):
                assert b["ts"] == pytest.approx(a["ts"] + a["dur"], abs=1e-6)


class TestCapture:
    def test_roundtrip_frames_losses_and_messages(self, tmp_path):
        path = tmp_path / "run.slimcap"
        writer = SlimcapWriter(path)
        channel = run_session(ObsContext(capture=writer))
        writer.close()
        assert is_slimcap(path)

        reader = SlimcapReader(path)
        records = list(reader.records())
        frames = [r for r in records if r.kind == KIND_FRAME]
        losses = [r for r in records if r.kind == KIND_LOSS]
        assert len(frames) + len(losses) == writer.frames_written
        # The tap sits on the uplinks, so losses on the server's lossy
        # uplink appear as LOSS records.
        uplink_lost = channel.network.uplink("server").stats.packets_lost
        assert len(losses) == uplink_lost > 0
        assert {r.src for r in frames} == {"server", "console"}
        messages = list(reader.messages())
        opcodes = {m.opcode for m in messages}
        assert "FILL" in opcodes and "StatusMessage" in opcodes
        # Wire bytes survive the roundtrip (fragment headers included).
        for message in messages:
            assert message.wire_bytes > 0
            assert message.first_time <= message.time

    def test_embedded_traces_roundtrip(self, tmp_path):
        tracer = TraceCollector()
        path = tmp_path / "run.slimcap"
        writer = SlimcapWriter(path)
        run_session(ObsContext(tracer=tracer, capture=writer))
        completed = tracer.completed_messages()
        for trace in completed:
            writer.trace(trace.to_dict(), now=trace.sent_at)
        writer.close()
        stored = SlimcapReader(path).traces()
        assert [t["trace_id"] for t in stored] == [
            t.trace_id for t in completed
        ]
        assert all(t["completed"] for t in stored)


class TestAnalyzerCli:
    @pytest.fixture
    def capture_path(self, tmp_path):
        tracer = TraceCollector()
        path = tmp_path / "run.slimcap"
        writer = SlimcapWriter(path)
        run_session(ObsContext(tracer=tracer, capture=writer))
        for trace in tracer.completed_messages():
            writer.trace(trace.to_dict(), now=trace.sent_at)
        writer.close()
        return path

    def test_summary_json(self, capture_path, capsys):
        assert slimcap_tool.main([str(capture_path), "--json"]) == 0
        output = json.loads(capsys.readouterr().out)
        summary = output["summary"]
        assert summary["per_opcode"]["FILL"]["messages"] >= 30
        assert summary["losses"] > 0
        assert summary["embedded_traces"] > 0

    def test_latency_and_timeline(self, capture_path, capsys):
        code = slimcap_tool.main(
            [str(capture_path), "--latency", "--timeline", "--json"]
        )
        assert code == 0
        output = json.loads(capsys.readouterr().out)
        assert output["latency"]["FILL"]["end_to_end"]["count"] >= 30
        text = " ".join(e["event"] for e in output["timeline"])
        assert "NACK" in text and "RECOVERED" in text and "LOSS" in text
        assert "REENCODE" in text

    def test_chrome_trace_flag(self, capture_path, tmp_path):
        out = tmp_path / "chrome.json"
        assert slimcap_tool.main(
            [str(capture_path), "--chrome-trace", str(out)]
        ) == 0
        document = json.loads(out.read_text())
        assert document["traceEvents"]

    def test_replay_accepts_slimcap(self, capture_path):
        session = session_from_capture(capture_path)
        assert len(session.updates) >= 30
        summary = replay(capture_path, 384e3)
        assert summary["packets"] > 0
        assert summary["verdict"]


class TestZeroOverhead:
    def test_disabled_path_allocates_nothing_in_obs(self):
        assert get_obs() is None
        run_session(None, n_updates=2)  # warm caches, imports, codecs
        tracemalloc.start()
        try:
            channel = run_session(None, n_updates=10)
            snapshot = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        obs_allocations = snapshot.filter_traces(
            [tracemalloc.Filter(True, "*/repro/obs/*")]
        ).statistics("filename")
        assert obs_allocations == []
        # And the fast-path guards resolved to "off" at construction.
        assert channel.network.uplink("server").capture is None
        assert channel.server_channel._trace is None
        assert channel.console._trace is None

    def test_packets_carry_no_trace_id_when_disabled(self):
        channel = run_session(None, n_updates=2, loss_rate=0.0)
        assert channel.server_channel.stats.messages_sent > 0
        # The Packet dataclass default keeps the field None end to end;
        # spot-check by sending one more message through the channel.
        sent = []
        original = channel.network.send

        def spy(packet):
            sent.append(packet)
            return original(packet)

        channel.network.send = spy
        channel.network.send_burst = lambda packets: [spy(p) for p in packets]
        from repro.core import commands as cmd
        from repro.core.commands import StatusKind

        channel.server_channel.send_command(
            cmd.StatusMessage(kind=StatusKind.SYNC, value=0)
        )
        assert sent and all(p.trace_id is None for p in sent)
