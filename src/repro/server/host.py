"""Server machine models (the hardware column of Table 3).

A :class:`ServerHost` bundles a CPU scheduler sized like one of the
paper's machines with memory capacity and a network uplink rate.  CPU
costs elsewhere in the reproduction are expressed in seconds *on a
296 MHz UltraSPARC-II*; machines scale them by relative clock rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import SchedulerError
from repro.netsim.backend import SimulationBackend
from repro.server.scheduler import Scheduler
from repro.units import GBPS, MBPS

#: The clock rate all CPU-cost constants in this package are normalised to.
REFERENCE_MHZ = 296.0


@dataclass(frozen=True)
class MachineSpec:
    """Static description of a server machine."""

    name: str
    num_cpus: int
    cpu_mhz: float
    ram_mb: float
    swap_mb: float
    uplink_bps: float

    @property
    def speed_factor(self) -> float:
        """CPU speed relative to the 296 MHz reference."""
        return self.cpu_mhz / REFERENCE_MHZ

    def scale_cost(self, reference_seconds: float) -> float:
        """Convert a reference-CPU cost to this machine's CPU time."""
        return reference_seconds / self.speed_factor


#: Machines from Table 3 and the Section 6.3 case studies.
ULTRA_2 = MachineSpec("Ultra 2", 2, 296.0, 512.0, 1024.0, 100 * MBPS)
ULTRA_2_1CPU = MachineSpec("Ultra 2 (1 cpu)", 1, 296.0, 512.0, 1024.0, 100 * MBPS)
E4500 = MachineSpec("Enterprise E4500", 8, 336.0, 6144.0, 13312.0, 1 * GBPS)
E4500_10CPU = MachineSpec("Enterprise E4500 (10x296)", 10, 296.0, 4096.0, 4608.0, 1 * GBPS)
E250 = MachineSpec("Enterprise E250", 2, 400.0, 2048.0, 13312.0, 1 * GBPS)


class ServerHost:
    """A running server: scheduler + memory + uplink.

    Args:
        sim: Event engine the scheduler runs on.
        spec: The machine being modelled.
        active_cpus: Optionally restrict the number of enabled CPUs (the
            Figure 9 experiment ran the E4500 "with a single processor
            enabled"; Figure 10 sweeps 1-8).
        quantum: Scheduler time slice.
    """

    def __init__(
        self,
        sim: SimulationBackend,
        spec: MachineSpec,
        active_cpus: Optional[int] = None,
        quantum: float = 0.010,
    ) -> None:
        cpus = active_cpus if active_cpus is not None else spec.num_cpus
        if not 1 <= cpus <= spec.num_cpus:
            raise SchedulerError(
                f"{spec.name} has {spec.num_cpus} CPUs; cannot enable {cpus}"
            )
        self.sim = sim
        self.spec = spec
        self.active_cpus = cpus
        self.scheduler = Scheduler(
            sim,
            num_cpus=cpus,
            quantum=quantum,
            memory_mb=spec.ram_mb,
        )

    def scale_cost(self, reference_seconds: float) -> float:
        """Reference-CPU seconds -> this machine's CPU seconds."""
        return self.spec.scale_cost(reference_seconds)

    def utilization(self) -> float:
        return self.scheduler.utilization()
