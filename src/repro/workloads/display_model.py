"""Display-update synthesis: what an input event paints (Figures 3-5).

Each input event induces a display update — a set of paint operations.
An application's updates are described by a set of :class:`SizeClass`
archetypes (character echo, widget repaint, paragraph repaint, page
paint, whole-image operation, ...), each with:

* an occurrence weight,
* a lognormal area distribution, and
* a content mix — how that class's pixels split between solid fills,
  bicolor text, region moves (scrolls), and full-color imagery.

Content mix varying *by size class* is essential to reproducing the
paper's data jointly: large updates are mostly scrolls and repaints
(big pixel counts, small encodings — Figure 3 vs Figure 5), while the
rare whole-image operations carry the bulk of the literal SET bytes that
pin Photoshop's aggregate compression near 2x (Figure 4).

Updates are expressed as :class:`~repro.framebuffer.painter.PaintOp`
lists positioned inside the display, so they can be run materialized
(real pixels) or accounting-only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.framebuffer.painter import PaintKind, PaintOp
from repro.framebuffer.regions import Rect
from repro.units import DISPLAY_HEIGHT, DISPLAY_WIDTH

#: A 7x13 glyph cell (matches the X baseline's font assumption).
GLYPH_AREA = 91

#: Palette of plausible 1999 desktop colors for fills.
FILL_COLORS = (
    (255, 255, 255),
    (238, 238, 238),
    (197, 194, 197),
    (214, 210, 222),
    (0, 0, 128),
    (99, 99, 206),
)


@dataclass(frozen=True)
class SizeClass:
    """One update archetype for an application.

    Attributes:
        name: Label ("echo", "widget", "page", ...).
        weight: Occurrence probability among the app's updates.
        median_area: Median update area, pixels.
        sigma: Lognormal log-std of the area.
        shares: Expected pixel shares (fill, text, copy, image); sums
            to 1.  Per-update shares are Dirichlet-jittered around these.
        image_uniform_fraction: Flat-background fraction inside this
            class's IMAGE ops (margins the SLIM encoder recovers as
            FILLs).
    """

    name: str
    weight: float
    median_area: float
    sigma: float
    shares: Tuple[float, float, float, float]
    image_uniform_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise WorkloadError(f"negative weight for class {self.name}")
        if self.median_area <= 0 or self.sigma <= 0:
            raise WorkloadError(f"bad area distribution for class {self.name}")
        if abs(sum(self.shares) - 1.0) > 1e-6:
            raise WorkloadError(f"shares for class {self.name} must sum to 1")
        if not 0 <= self.image_uniform_fraction <= 1:
            raise WorkloadError("image_uniform_fraction must be in [0, 1]")


@dataclass(frozen=True)
class UpdateArchetype:
    """An application's complete update model: its size classes."""

    classes: Tuple[SizeClass, ...]
    #: Dirichlet concentration; larger keeps updates nearer the mix.
    content_concentration: float = 8.0

    def __post_init__(self) -> None:
        if not self.classes:
            raise WorkloadError("archetype needs at least one size class")
        total = sum(c.weight for c in self.classes)
        if abs(total - 1.0) > 1e-6:
            raise WorkloadError(f"class weights sum to {total}, expected 1")

    def expected_area(self) -> float:
        """Mean update area (before the display-size cap)."""
        return sum(
            c.weight * c.median_area * float(np.exp(c.sigma**2 / 2))
            for c in self.classes
        )

    def expected_set_share(self) -> float:
        """Pixel-weighted literal (SET) share — drives Figure 4."""
        total = self.expected_area()
        literal = sum(
            c.weight
            * c.median_area
            * float(np.exp(c.sigma**2 / 2))
            * c.shares[3]
            * (1.0 - c.image_uniform_fraction)
            for c in self.classes
        )
        return literal / total if total else 0.0


class DisplayModel:
    """Samples display updates for one application."""

    def __init__(
        self,
        archetype: UpdateArchetype,
        display_w: int = DISPLAY_WIDTH,
        display_h: int = DISPLAY_HEIGHT,
    ) -> None:
        self.archetype = archetype
        self.display_w = display_w
        self.display_h = display_h
        self.display_area = display_w * display_h
        self._weights = [c.weight for c in archetype.classes]

    # -- sampling ---------------------------------------------------------------
    def sample_class(self, rng: np.random.Generator) -> SizeClass:
        idx = int(rng.choice(len(self._weights), p=self._weights))
        return self.archetype.classes[idx]

    def sample_update(self, rng: np.random.Generator, seed: int = 0) -> List[PaintOp]:
        """Generate the paint ops for one display update."""
        cls = self.sample_class(rng)
        area = float(rng.lognormal(np.log(cls.median_area), cls.sigma))
        total_area = int(np.clip(area, 16.0, self.display_area))
        shares = np.asarray(cls.shares, dtype=np.float64)
        conc = self.archetype.content_concentration
        jittered = rng.dirichlet(shares * conc + 1e-3)
        ops: List[PaintOp] = []
        kinds = (PaintKind.FILL, PaintKind.TEXT, PaintKind.COPY, PaintKind.IMAGE)
        for kind, share in zip(kinds, jittered):
            op_area = int(total_area * share)
            if op_area < 16:
                continue
            ops.append(self._make_op(kind, op_area, rng, seed, cls))
        if not ops:
            ops.append(self._make_op(PaintKind.TEXT, max(16, total_area), rng, seed, cls))
        return ops

    # -- op construction ----------------------------------------------------------
    def _place_rect(self, area: int, rng: np.random.Generator, min_h: int = 1) -> Rect:
        """Pick a plausible rectangle of roughly ``area`` pixels on screen."""
        area = max(16, min(area, self.display_area))
        # Aspect ratio between 1:1 and 4:1, biased wide (GUI rows/panels).
        aspect = float(rng.uniform(1.0, 4.0))
        w = int(np.sqrt(area * aspect))
        w = max(4, min(w, self.display_w))
        h = max(min_h, min(area // w, self.display_h))
        w = max(4, min(area // h, self.display_w))
        x = int(rng.integers(0, self.display_w - w + 1))
        y = int(rng.integers(0, self.display_h - h + 1))
        return Rect(x, y, w, h)

    def _make_op(
        self,
        kind: PaintKind,
        area: int,
        rng: np.random.Generator,
        seed: int,
        cls: SizeClass,
    ) -> PaintOp:
        if kind is PaintKind.FILL:
            rect = self._place_rect(area, rng)
            color = FILL_COLORS[int(rng.integers(0, len(FILL_COLORS)))]
            return PaintOp(PaintKind.FILL, rect, color=color, seed=seed)
        if kind is PaintKind.TEXT:
            rect = self._place_rect(area, rng, min_h=13)
            return PaintOp(
                PaintKind.TEXT,
                rect,
                fg=(0, 0, 0),
                bg=(255, 255, 255),
                seed=seed,
                char_count=max(1, rect.area // GLYPH_AREA),
                glyph_density=float(rng.uniform(0.08, 0.16)),
            )
        if kind is PaintKind.COPY:
            rect = self._place_rect(area, rng)
            # A scroll: source displaced vertically within the display.
            max_dy = min(64, self.display_h - rect.h)
            dy = int(rng.integers(1, max(2, max_dy + 1)))
            src_y = rect.y + dy if rect.y2 + dy <= self.display_h else rect.y - dy
            src_y = int(np.clip(src_y, 0, self.display_h - rect.h))
            src = Rect(rect.x, src_y, rect.w, rect.h)
            return PaintOp(PaintKind.COPY, rect, src=src, seed=seed)
        if kind is PaintKind.IMAGE:
            rect = self._place_rect(area, rng)
            return PaintOp(
                PaintKind.IMAGE,
                rect,
                seed=seed,
                uniform_fraction=cls.image_uniform_fraction,
            )
        raise WorkloadError(f"cannot synthesise op kind {kind!r}")

    # -- analytic helpers ------------------------------------------------------------
    def mean_area(self) -> float:
        """Expected update area (before the display-size cap)."""
        return self.archetype.expected_area()
