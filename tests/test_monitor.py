"""Unit tests for the Section 6.3 case-study monitor."""

import pytest

from repro.monitor.casestudy import (
    ENGINEERING_GROUP,
    UNIVERSITY_LAB,
    DayProfile,
    SiteModel,
    simulate_day,
)


class TestSiteModels:
    def test_paper_configurations(self):
        assert UNIVERSITY_LAB.n_terminals == 50
        assert UNIVERSITY_LAB.machine.num_cpus == 2
        assert ENGINEERING_GROUP.n_terminals > 100
        assert ENGINEERING_GROUP.machine.num_cpus == 8

    def test_presence_curves_bounded(self):
        for site in (UNIVERSITY_LAB, ENGINEERING_GROUP):
            for hour in range(24):
                assert 0.0 <= site.presence(float(hour)) <= 1.0

    def test_lab_peaks_later_than_office(self):
        lab_peak = max(range(24), key=lambda h: UNIVERSITY_LAB.presence(float(h)))
        assert lab_peak >= 14  # afternoon/evening


class TestDayProfile:
    @pytest.fixture(scope="class")
    def lab_day(self):
        return simulate_day(UNIVERSITY_LAB, seed=3)

    @pytest.fixture(scope="class")
    def eng_day(self):
        return simulate_day(ENGINEERING_GROUP, seed=3)

    def test_shapes(self, lab_day):
        n = len(lab_day.times_hours)
        assert n == 24 * 12  # 5-minute windows
        assert len(lab_day.cpu_utilization) == n
        assert len(lab_day.net_mbps) == n
        assert len(lab_day.total_users) == n

    def test_lab_cpu_saturates(self, lab_day):
        assert lab_day.peak_cpu() == pytest.approx(1.0)

    def test_engineering_cpu_never_saturates(self, eng_day):
        assert eng_day.peak_cpu() < 0.95

    def test_network_below_5mbps(self, lab_day, eng_day):
        assert lab_day.peak_net_mbps() < 5.0
        assert eng_day.peak_net_mbps() < 5.0

    def test_active_fraction_of_total(self, lab_day, eng_day):
        assert lab_day.peak_active_users() < lab_day.peak_total_users()
        assert eng_day.peak_active_users() < 0.6 * eng_day.peak_total_users()

    def test_night_is_quiet(self, lab_day):
        # Windows covering 2-4 AM.
        night = [
            cpu
            for t, cpu in zip(lab_day.times_hours, lab_day.cpu_utilization)
            if 2.0 <= t <= 4.0
        ]
        assert max(night) < 0.6

    def test_deterministic_given_seed(self):
        a = simulate_day(UNIVERSITY_LAB, seed=9)
        b = simulate_day(UNIVERSITY_LAB, seed=9)
        assert a.cpu_utilization == b.cpu_utilization
        assert a.net_mbps == b.net_mbps

    def test_users_bounded_by_terminals(self, lab_day):
        assert lab_day.peak_total_users() <= UNIVERSITY_LAB.n_terminals
