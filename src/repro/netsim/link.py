"""Rate-limited, FIFO point-to-point links.

A link models one direction of a full-duplex cable: packets serialize at
the link rate, queue FIFO while the link is busy, then arrive after the
propagation delay.  An optional queue limit (switch output buffer) causes
tail drops; an optional random loss rate models corruption — both feed the
transport layer's replay-based recovery.

Beyond the paper's benign switched LAN, a link can model WAN/mobile
adversity: per-packet delay *jitter* (uniform extra propagation delay,
as seen on wifi contention and cellular schedulers) and *correlated*
burst loss via a two-state Gilbert–Elliott chain
(:class:`GilbertElliottLoss`) — losses arrive in runs, which stresses
recovery very differently from independent Bernoulli drops at the same
average rate.  Both knobs draw from the link's ``rng`` only when
enabled, so existing seeded runs are unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Deque, Optional

from collections import deque

import numpy as np

from repro.core.wire import Datagram
from repro.errors import SimulationError
from repro.netsim.backend import SimulationBackend
from repro.netsim.packet import Packet
from repro.obs.capture import KIND_DROP, KIND_FRAME, KIND_LOSS
from repro.obs.context import ObsContext, get_obs
from repro.telemetry.metrics import MetricsRegistry, get_registry
from repro.units import transmission_delay

#: Queue-depth histogram buckets (packets waiting behind the wire).
QUEUE_DEPTH_BUCKETS = (0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512)

#: Process-wide switch for the fast transit path (see :class:`Link`).
#: Checked at Link construction; the equivalence tests force the scalar
#: path to diff the two implementations on identical seeds.  The
#: ``SLIM_SCALAR_FABRIC`` environment variable disables it for a whole
#: run (handy when bisecting a suspected fast-path bug).
import os as _os

_fast_transit = _os.environ.get("SLIM_SCALAR_FABRIC", "") in ("", "0")


def set_fast_transit(enabled: bool) -> bool:
    """Enable/disable the fast transit path for *new* links; returns the
    previous setting so tests can restore it."""
    global _fast_transit
    previous = _fast_transit
    _fast_transit = bool(enabled)
    return previous


def fast_transit_enabled() -> bool:
    return _fast_transit


class GilbertElliottLoss:
    """Two-state Markov (Gilbert–Elliott) burst-loss model.

    The chain sits in a *good* or *bad* state; each packet first gives the
    chain a chance to flip, then draws its loss decision at the current
    state's loss rate.  Runs of bad-state packets produce the correlated
    loss bursts typical of wifi interference and cellular handovers —
    very different recovery behaviour from Bernoulli loss at the same
    long-run average (:meth:`mean_loss_rate`).

    Instances carry the chain state, so every link needs its own copy
    (:meth:`fresh`); sharing one across links would couple their bursts.

    Args:
        p_enter_bad: Per-packet probability of a good->bad transition.
        p_exit_bad: Per-packet probability of a bad->good transition.
        loss_good: Loss probability while in the good state.
        loss_bad: Loss probability while in the bad state.
    """

    __slots__ = ("p_enter_bad", "p_exit_bad", "loss_good", "loss_bad", "bad")

    def __init__(
        self,
        p_enter_bad: float,
        p_exit_bad: float,
        loss_good: float = 0.0,
        loss_bad: float = 1.0,
    ) -> None:
        for label, value in (
            ("p_enter_bad", p_enter_bad),
            ("p_exit_bad", p_exit_bad),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ):
            if not 0.0 <= value <= 1.0:
                raise SimulationError(
                    f"{label} must be a probability, got {value}"
                )
        if p_exit_bad == 0 and p_enter_bad > 0:
            raise SimulationError("a bad state with no exit absorbs the link")
        self.p_enter_bad = p_enter_bad
        self.p_exit_bad = p_exit_bad
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self.bad = False

    def fresh(self) -> "GilbertElliottLoss":
        """A new chain with the same parameters, reset to the good state."""
        return GilbertElliottLoss(
            self.p_enter_bad, self.p_exit_bad, self.loss_good, self.loss_bad
        )

    def sample(self, rng: np.random.Generator) -> bool:
        """Advance the chain one packet; True if that packet is lost."""
        if self.bad:
            if self.p_exit_bad > 0 and float(rng.random()) < self.p_exit_bad:
                self.bad = False
        elif self.p_enter_bad > 0 and float(rng.random()) < self.p_enter_bad:
            self.bad = True
        rate = self.loss_bad if self.bad else self.loss_good
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        return float(rng.random()) < rate

    def mean_loss_rate(self) -> float:
        """Long-run average loss rate (stationary-weighted state rates)."""
        total = self.p_enter_bad + self.p_exit_bad
        if total == 0:
            return self.loss_good
        bad_share = self.p_enter_bad / total
        return bad_share * self.loss_bad + (1 - bad_share) * self.loss_good


@dataclass
class LinkStats:
    """Counters a link maintains for analysis.

    ``packets_dropped`` counts congestion drops at the output buffer
    (queue tail-drops); ``packets_lost`` counts random in-flight losses
    (corruption).  Figure 11's loss accounting needs them separate: the
    former responds to load, the latter to the configured loss rate.
    """

    packets_sent: int = 0
    bytes_sent: int = 0
    packets_dropped: int = 0
    packets_lost: int = 0
    queue_delay_total: float = 0.0
    busy_time: float = 0.0

    def mean_queue_delay(self) -> float:
        """Average time packets waited behind others, in seconds."""
        if self.packets_sent == 0:
            return 0.0
        return self.queue_delay_total / self.packets_sent


class Link:
    """One direction of a cable between two nodes.

    Args:
        sim: The event engine.
        rate_bps: Serialization rate in bits/second.
        propagation_delay: One-way latency, seconds (cable + PHY).
        deliver: Called as ``deliver(packet)`` when a packet arrives at
            the far end.
        queue_limit_bytes: Output buffer size; None means unbounded.
        loss_rate: Probability a packet is lost in flight (0 disables).
        rng: Random generator for loss/jitter decisions; required when
            ``loss_rate`` > 0, ``jitter`` > 0, or ``burst_loss`` is set,
            so runs stay deterministic.
        jitter: Maximum extra per-packet propagation delay, seconds;
            drawn uniformly from ``[0, jitter)``.  Jittered packets can
            arrive reordered (the endpoint layer is reorder-tolerant).
        burst_loss: A :class:`GilbertElliottLoss` chain replacing the
            independent ``loss_rate`` draw with correlated burst loss.
            The instance is owned by this link (chain state is mutable);
            pass ``model.fresh()`` when configuring several links from
            one template.
        name: Label used in diagnostics.
        registry: Telemetry sink; defaults to the process-global
            registry (a no-op unless telemetry is enabled).
        obs: Observability context; defaults to the process-global one
            (usually ``None``).  Supplies the causal tracer.  Wire
            capture is separate: set :attr:`capture` on the links that
            should record frames (the network taps uplinks only, so
            each frame is captured exactly once).
    """

    def __init__(
        self,
        sim: SimulationBackend,
        rate_bps: float,
        propagation_delay: float,
        deliver: Callable[[Packet], None],
        queue_limit_bytes: Optional[int] = None,
        loss_rate: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        jitter: float = 0.0,
        burst_loss: Optional[GilbertElliottLoss] = None,
        name: str = "link",
        registry: Optional[MetricsRegistry] = None,
        obs: Optional[ObsContext] = None,
    ) -> None:
        if rate_bps <= 0:
            raise SimulationError(f"link rate must be positive, got {rate_bps}")
        if propagation_delay < 0:
            raise SimulationError("propagation delay cannot be negative")
        if jitter < 0:
            raise SimulationError("jitter cannot be negative")
        if loss_rate > 0 and rng is None:
            raise SimulationError("loss_rate > 0 requires an rng for determinism")
        if jitter > 0 and rng is None:
            raise SimulationError("jitter > 0 requires an rng for determinism")
        if burst_loss is not None and rng is None:
            raise SimulationError("burst_loss requires an rng for determinism")
        self.sim = sim
        self.rate_bps = rate_bps
        self.propagation_delay = propagation_delay
        self.deliver = deliver
        self.queue_limit_bytes = queue_limit_bytes
        self.loss_rate = loss_rate
        self.jitter = jitter
        self.burst_loss = burst_loss
        self.rng = rng
        self.name = name
        self._stats = LinkStats()
        self._queue: Deque[tuple] = deque()  # (packet, enqueue_time)
        self._queued_bytes = 0
        self._busy = False
        #: When the in-flight packet started serializing (None when idle);
        #: lets utilization() prorate the partially transmitted packet.
        self._tx_started_at: Optional[float] = None
        obs = obs if obs is not None else get_obs()
        self._trace = obs.tracer if obs is not None else None
        #: Wire-capture tap; assign a SlimcapWriter to record this
        #: link's frames (drops and losses included).  Assigning one
        #: drops the link back to the scalar transit path (the fast
        #: path has no tx_start/tx_end instants to report against).
        self._capture = None
        self._metrics = registry if registry is not None else get_registry()
        # Pre-resolved telemetry handles: hot paths pay one None test
        # when telemetry is disabled (enablement is fixed at construction).
        self._m_bytes = self._m_packets = self._m_drops = None
        self._m_losses = self._m_queue_depth = self._m_residency = None
        if self._metrics.enabled:
            m = self._metrics
            self._m_bytes = m.counter("net.link.bytes_sent", link=name)
            self._m_packets = m.counter("net.link.packets_sent", link=name)
            self._m_drops = m.counter("net.link.packets_dropped", link=name)
            self._m_losses = m.counter("net.link.packets_lost", link=name)
            self._m_queue_depth = m.histogram(
                "net.link.queue_depth", buckets=QUEUE_DEPTH_BUCKETS, link=name
            )
            self._m_residency = m.histogram(
                "net.link.queue_residency_seconds", link=name
            )
        # -- fast transit path -----------------------------------------------
        # A FIFO wire is fully determined at enqueue time: serialization
        # start/finish fall out of a busy-watermark, and because finish
        # order equals enqueue order, every RNG decision (loss, GE chain
        # step, jitter) can be drawn at enqueue while consuming the
        # stream in exactly the scalar per-packet order.  Each packet
        # then costs ONE event (the delivery) instead of three, and lost
        # packets cost none.  Stats are kept exact at arbitrary sample
        # times by pending-credit records folded lazily against the
        # clock (`_fold`).  The path switches off whenever an observer
        # needs the intermediate instants (tracer, capture, telemetry).
        self._fast = (
            _fast_transit and self._trace is None and self._m_packets is None
        )
        self._busy_until = 0.0
        #: [start, nbytes, queue_delay] — folded once serialization has
        #: started (queue occupancy + queue-delay credit).
        self._pending_start: Deque[list] = deque()
        #: [finish, start, nbytes, lost] — folded once serialization has
        #: finished (throughput + busy-time + loss credit).
        self._pending_fin: Deque[list] = deque()
        #: Packets in flight on the no-jitter path, delivered FIFO by
        #: the single preallocated callback below.
        self._transit: Deque[Packet] = deque()
        self._deliver_cb = self._deliver_next
        # Freelists for the two pending-record shapes: the steady state
        # recycles them instead of churning the allocator.
        self._rec3_pool: list = []
        self._rec4_pool: list = []

    @property
    def capture(self):
        return self._capture

    @capture.setter
    def capture(self, value) -> None:
        self._capture = value
        if value is not None:
            self._fast = False

    # -- the fast transit path ---------------------------------------------------
    def _fold(self, ref: float) -> None:
        """Settle pending credits for everything that happened by ``ref``."""
        self._fold_fin(ref)
        self._fold_starts(ref)

    def _fold_fin(self, ref: float) -> None:
        pend = self._pending_fin
        if pend and pend[0][0] <= ref:
            stats = self._stats
            pool = self._rec4_pool
            while pend and pend[0][0] <= ref:
                rec = pend.popleft()
                stats.packets_sent += 1
                stats.bytes_sent += rec[2]
                stats.busy_time += rec[0] - rec[1]
                if rec[3]:
                    stats.packets_lost += 1
                pool.append(rec)

    def _fold_starts(self, ref: float) -> None:
        starts = self._pending_start
        if starts and starts[0][0] <= ref:
            stats = self._stats
            pool = self._rec3_pool
            while starts and starts[0][0] <= ref:
                rec = starts.popleft()
                self._queued_bytes -= rec[1]
                stats.queue_delay_total += rec[2]
                pool.append(rec)

    def _send_fast(self, packet: Packet, ready: float) -> bool:
        """Admit one packet onto the wire as of time ``ready``."""
        nbytes = packet.nbytes
        busy = self._busy_until
        if busy > ready:
            # The wire is mid-serialization at the arrival instant, so
            # the packet queues — exactly when the scalar path consults
            # the tail-drop limit and starts the queue-delay clock.
            limit = self.queue_limit_bytes
            if limit is not None:
                # Settle bytes that left the queue by ``ready`` so the
                # drop decision sees the scalar path's exact occupancy.
                if self._pending_start and self._pending_start[0][0] <= ready:
                    self._fold_starts(ready)
                if self._queued_bytes + nbytes > limit:
                    self._stats.packets_dropped += 1
                    if packet.pooled:
                        packet.release()
                    return False
            start = busy
            pool = self._rec3_pool
            if pool:
                rec = pool.pop()
                rec[0] = start
                rec[1] = nbytes
                rec[2] = start - ready
            else:
                rec = [start, nbytes, start - ready]
            self._pending_start.append(rec)
            self._queued_bytes += nbytes
        else:
            # Idle wire: serialization starts immediately — the packet
            # never queues, so there is no queue record at all (the
            # scalar path likewise bypasses queue accounting here).
            start = ready
        finish = start + nbytes * 8.0 / self.rate_bps
        self._busy_until = finish
        rng = self.rng
        if self.burst_loss is not None:
            lost = self.burst_loss.sample(rng)
        else:
            lost = (
                self.loss_rate > 0
                and rng is not None
                and float(rng.random()) < self.loss_rate
            )
        pool = self._rec4_pool
        if pool:
            rec = pool.pop()
            rec[0] = finish
            rec[1] = start
            rec[2] = nbytes
            rec[3] = lost
        else:
            rec = [finish, start, nbytes, lost]
        self._pending_fin.append(rec)
        if lost:
            # Drawn dead at enqueue: the loss costs no event at all.
            if packet.pooled:
                packet.release()
            return True
        delay = self.propagation_delay
        if self.jitter > 0:
            delay += float(rng.random()) * self.jitter
            # Jittered arrivals can reorder, so each needs its own
            # carrier; the clean path below shares one callback.
            self.sim.schedule_at(finish + delay, lambda: self.deliver(packet))
        else:
            self._transit.append(packet)
            self.sim.schedule_at(finish + delay, self._deliver_cb)
        return True

    def _deliver_next(self) -> None:
        # Delivery instants are natural fold points: this packet's own
        # finish record is due by now, so the fold always settles work,
        # and doing it here keeps the pending deques bounded by the
        # in-flight backlog with no per-send bookkeeping.
        packet = self._transit.popleft()
        now = self.sim.now
        self._fold_fin(now)
        starts = self._pending_start
        if starts and starts[0][0] <= now:
            self._fold_starts(now)
        self.deliver(packet)

    def send_deferred(self, packet: Packet, extra_delay: float) -> bool:
        """Admit ``packet`` as if sent ``extra_delay`` seconds from now.

        The fast-path replacement for scheduling a closure that calls
        :meth:`send` later (the switch's forwarding delay): admission,
        serialization, and loss are all evaluated at the deferred ready
        time, with no intermediate event.  Callers must keep ready times
        per link monotone (a constant ``extra_delay`` per caller, as the
        switch's forwarding delay is, guarantees this).  Scalar-path
        links fall back to a scheduled send.
        """
        if self._fast:
            return self._send_fast(packet, self.sim.now + extra_delay)
        self.sim.schedule(extra_delay, lambda: self.send(packet))
        return True

    def send_burst(self, packets) -> list:
        """Send a train handed over at one instant; one admission sweep.

        Loss decisions consume the RNG stream in per-packet order —
        vectorized into a single ``rng.random(n)`` call when the
        per-packet draw count is fixed (Bernoulli loss, no jitter, no
        queue limit), drawn per packet otherwise — so seeded traces are
        identical to one :meth:`send` call per packet.
        """
        if not self._fast:
            return [self.send(p) for p in packets]
        now = self.sim.now
        if (
            len(packets) > 1
            and self.loss_rate > 0
            and self.jitter == 0
            and self.burst_loss is None
            and self.queue_limit_bytes is None
            and self.rng is not None
        ):
            return self._send_burst_bernoulli(packets, now)
        return [self._send_fast(p, now) for p in packets]

    def _send_burst_bernoulli(self, packets, now: float) -> list:
        if self._pending_start and self._pending_start[0][0] <= now:
            self._fold_starts(now)
            self._fold_fin(now)
        draws = self.rng.random(len(packets))
        rate = self.loss_rate
        rate_bps = self.rate_bps
        prop = self.propagation_delay
        busy = self._busy_until
        starts = self._pending_start
        fins = self._pending_fin
        pool3 = self._rec3_pool
        pool4 = self._rec4_pool
        transit = self._transit
        schedule_at = self.sim.schedule_at
        deliver_cb = self._deliver_cb
        queued = 0
        for i, packet in enumerate(packets):
            nbytes = packet.nbytes
            if busy > now:
                start = busy
                if pool3:
                    rec = pool3.pop()
                    rec[0] = start
                    rec[1] = nbytes
                    rec[2] = start - now
                else:
                    rec = [start, nbytes, start - now]
                starts.append(rec)
                queued += nbytes
            else:
                start = now
            finish = start + nbytes * 8.0 / rate_bps
            busy = finish
            lost = bool(draws[i] < rate)
            if pool4:
                rec = pool4.pop()
                rec[0] = finish
                rec[1] = start
                rec[2] = nbytes
                rec[3] = lost
            else:
                rec = [finish, start, nbytes, lost]
            fins.append(rec)
            if lost:
                if packet.pooled:
                    packet.release()
            else:
                transit.append(packet)
                schedule_at(finish + prop, deliver_cb)
        self._busy_until = busy
        self._queued_bytes += queued
        return [True] * len(packets)

    # -- sending -----------------------------------------------------------------
    def send(self, packet: Packet) -> bool:
        """Enqueue a packet; returns False if the buffer dropped it."""
        if self._fast:
            return self._send_fast(packet, self.sim.now)
        if (
            self.queue_limit_bytes is not None
            and self._queued_bytes + packet.nbytes > self.queue_limit_bytes
        ):
            self._stats.packets_dropped += 1
            if self._m_drops is not None:
                self._m_drops.inc()
            if self.capture is not None and isinstance(packet.payload, Datagram):
                self.capture.frame(
                    self.sim.now, packet.src, packet.dst, packet.payload,
                    kind=KIND_DROP,
                )
            return False
        if self._trace is not None and packet.trace_id is not None:
            self._trace.packet_event(
                packet.trace_id, packet.packet_id, "enqueue", self.name,
                self.sim.now,
            )
        self._queue.append((packet, self.sim.now))
        self._queued_bytes += packet.nbytes
        if self._m_queue_depth is not None:
            self._m_queue_depth.observe(len(self._queue))
        if not self._busy:
            self._transmit_next()
        return True

    def _transmit_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        packet, enqueued_at = self._queue.popleft()
        self._queued_bytes -= packet.nbytes
        self._stats.queue_delay_total += self.sim.now - enqueued_at
        if self._m_residency is not None:
            self._m_residency.observe(self.sim.now - enqueued_at)
        if self._trace is not None and packet.trace_id is not None:
            self._trace.packet_event(
                packet.trace_id, packet.packet_id, "tx_start", self.name,
                self.sim.now,
            )
        serialization = transmission_delay(packet.nbytes, self.rate_bps)
        self._tx_started_at = self.sim.now
        self.sim.schedule(serialization, lambda: self._finish_serialization(packet))

    def _finish_serialization(self, packet: Packet) -> None:
        # Busy time is credited on completion (not at tx start): a
        # utilization() sample taken mid-serialization must only see the
        # bits that have actually left the interface.
        if self._tx_started_at is not None:
            self._stats.busy_time += self.sim.now - self._tx_started_at
            self._tx_started_at = None
        self._stats.packets_sent += 1
        self._stats.bytes_sent += packet.nbytes
        if self._m_packets is not None:
            self._m_packets.inc()
            self._m_bytes.inc(packet.nbytes)
        if self.burst_loss is not None:
            lost = self.burst_loss.sample(self.rng)
        else:
            lost = (
                self.loss_rate > 0
                and self.rng is not None
                and float(self.rng.random()) < self.loss_rate
            )
        if self._trace is not None and packet.trace_id is not None:
            self._trace.packet_event(
                packet.trace_id, packet.packet_id, "tx_end", self.name,
                self.sim.now,
            )
        if self.capture is not None and isinstance(packet.payload, Datagram):
            self.capture.frame(
                self.sim.now, packet.src, packet.dst, packet.payload,
                kind=KIND_LOSS if lost else KIND_FRAME,
            )
        if lost:
            self._stats.packets_lost += 1
            if self._m_losses is not None:
                self._m_losses.inc()
            if packet.pooled:
                packet.release()
        else:
            delay = self.propagation_delay
            if self.jitter > 0:
                delay += float(self.rng.random()) * self.jitter
            if self._trace is not None and packet.trace_id is not None:
                self.sim.schedule(delay, lambda: self._deliver_traced(packet))
            else:
                self.sim.schedule(delay, lambda: self.deliver(packet))
        # The wire frees up as soon as the last bit leaves.
        self._transmit_next()

    def _deliver_traced(self, packet: Packet) -> None:
        """Record arrival at the far end, then hand the packet over.

        The "deliver" event lands immediately before the endpoint's
        processing, so a reassembly completing inside it can identify
        this packet as the one that finished the message.
        """
        self._trace.packet_event(
            packet.trace_id, packet.packet_id, "deliver", self.name,
            self.sim.now,
        )
        self.deliver(packet)

    # -- introspection -----------------------------------------------------------
    @property
    def stats(self) -> LinkStats:
        """Counters, exact as of the current simulated time.

        On the fast transit path, credits for packets whose start/finish
        instants have passed are folded in on access, so a reader sees
        exactly what the scalar path's per-event accounting would show.
        """
        if self._pending_fin or self._pending_start:
            self._fold(self._fold_ref())
        return self._stats

    def _fold_ref(self) -> float:
        """Settlement horizon for reads: ``now`` while events remain.

        Once the engine quiesces, everything admitted is folded: a run
        whose trailing packets were all lost ends *earlier* than the
        scalar run (losses generate no events), but by then every
        start/finish instant is a settled fact the scalar path would
        have counted by its own, later, final clock.
        """
        return self.sim.now if self.sim.pending else float("inf")

    @property
    def queue_depth(self) -> int:
        """Packets currently waiting (not counting the one in flight)."""
        if self._pending_start:
            self._fold_starts(self._fold_ref())
        return len(self._queue) + len(self._pending_start)

    @property
    def queued_bytes(self) -> int:
        if self._pending_start:
            self._fold_starts(self._fold_ref())
        return self._queued_bytes

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Fraction of time the link has been serializing bits.

        Safe to sample mid-serialization: the in-flight packet counts
        only for the time it has actually occupied the wire so far.
        """
        now = self.sim.now
        window = elapsed if elapsed is not None else now
        if window <= 0:
            return 0.0
        if self._pending_fin or self._pending_start:
            self._fold(now)
        busy = self._stats.busy_time
        if self._tx_started_at is not None:
            busy += now - self._tx_started_at
        elif self._pending_fin:
            head = self._pending_fin[0]
            if head[1] <= now:  # started but not finished: prorate
                busy += now - head[1]
        return min(1.0, busy / window)
