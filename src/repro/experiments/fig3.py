"""Figure 3: cumulative distributions of pixels changed per input event.

Uses the paper's attribution heuristic (Section 5.2): all pixel changes
between two input events are attributed to the first event.  Headline
observations:

* display updates affect only a small fraction of the 1.25 Mpixel
  display: ~50 % of events change fewer than 10 Kpixels in every app;
* at most ~20 % of Frame Maker / PIM events exceed 10 Kpixels;
* ~30 % of Netscape / Photoshop events exceed 50 Kpixels, and Netscape
  is more demanding than Photoshop in raw pixels.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.cdf import Cdf
from repro.experiments.runner import (
    ExperimentConfig,
    ExperimentResult,
    experiment,
)
from repro.experiments import userstudy
from repro.units import DISPLAY_PIXELS


def pixel_cdfs(
    n_users: int = userstudy.DEFAULT_N_USERS,
    duration: float = userstudy.DEFAULT_DURATION,
    seed: int = userstudy.DEFAULT_SEED,
) -> Dict[str, Cdf]:
    """Per-application CDFs of pixels changed per input event."""
    cdfs: Dict[str, Cdf] = {}
    for name, (traces, _profiles) in userstudy.all_studies(
        n_users=n_users, duration=duration, seed=seed
    ).items():
        samples = [p for trace in traces for p in trace.pixels_per_event()]
        cdfs[name] = Cdf(samples)
    return cdfs


@experiment("fig3", title="CDF of pixels changed per user input event", section="4.2")
def run(config: ExperimentConfig) -> ExperimentResult:
    n_users = config.n_users
    cdfs = pixel_cdfs(n_users=n_users or userstudy.DEFAULT_N_USERS)
    rows = []
    for name, cdf in cdfs.items():
        rows.append(
            {
                "application": name,
                "% below 10Kpx": round(cdf.fraction_below(10_000) * 100, 1),
                "% above 10Kpx": round(cdf.fraction_above(10_000) * 100, 1),
                "% above 50Kpx": round(cdf.fraction_above(50_000) * 100, 1),
                "mean px": round(cdf.mean),
                "% of display (mean)": round(cdf.mean / DISPLAY_PIXELS * 100, 2),
            }
        )
    return ExperimentResult(
        experiment_id="fig3",
        title="CDF of pixels changed per user input event",
        rows=rows,
        notes=[
            "paper: ~50% of events change <10Kpx for every app; <=20% of "
            "FrameMaker/PIM events exceed 10Kpx; ~30% of Netscape/"
            "Photoshop events exceed 50Kpx; Netscape > Photoshop",
        ],
    )

