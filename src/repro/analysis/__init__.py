"""Trace logging and statistical post-processing.

The paper's methodology logs every protocol event once and answers all
questions by post-processing (Section 3.1): "we logged all the
information related to their network traffic and resource utilization.
In this way, we can investigate different aspects of the system by
post-processing the data, rather than conducting more user studies."
This package is that half of the methodology.
"""

from repro.analysis.cdf import Cdf, histogram
from repro.analysis.stats import linear_fit, summarize, Summary
from repro.analysis.traces import (
    InputRecord,
    UpdateRecord,
    SessionTrace,
    load_traces,
    save_traces,
)

__all__ = [
    "Cdf",
    "histogram",
    "linear_fit",
    "summarize",
    "Summary",
    "InputRecord",
    "UpdateRecord",
    "SessionTrace",
    "load_traces",
    "save_traces",
]
