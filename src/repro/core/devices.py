"""Remote device management (Section 2.4).

Peripherals attach to the system through a console's USB hub; the server's
remote device manager tracks which devices live behind which console and
routes their I/O into the owning user's session.  Devices are as stateless
as the console: unplugging and replugging (or moving to another console
with the smart card) re-announces them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import SessionError


class DeviceClass(enum.Enum):
    """USB device classes the Sun Ray 1 console fans in."""

    KEYBOARD = "keyboard"
    MOUSE = "mouse"
    AUDIO = "audio"
    SMART_CARD_READER = "smart-card-reader"
    OTHER = "other"


@dataclass(frozen=True)
class Device:
    """One peripheral plugged into a console's USB hub."""

    device_id: str
    device_class: DeviceClass
    console_id: str
    port: int

    def __post_init__(self) -> None:
        if not 0 <= self.port <= 3:
            raise SessionError(
                f"Sun Ray 1 hub has 4 ports; port {self.port} is invalid"
            )


class RemoteDeviceManager:
    """Tracks peripherals and routes them to sessions."""

    def __init__(self) -> None:
        self._devices: Dict[str, Device] = {}
        self._by_console: Dict[str, Dict[int, str]] = {}

    def plug(self, device: Device) -> None:
        """Announce a device; the port must be free on that console."""
        ports = self._by_console.setdefault(device.console_id, {})
        if device.port in ports:
            raise SessionError(
                f"port {device.port} on console {device.console_id} is occupied"
            )
        if device.device_id in self._devices:
            raise SessionError(f"device {device.device_id} already plugged")
        ports[device.port] = device.device_id
        self._devices[device.device_id] = device

    def unplug(self, device_id: str) -> Device:
        """Remove a device (pulled from the hub or console power-cycled)."""
        device = self._devices.pop(device_id, None)
        if device is None:
            raise SessionError(f"unknown device {device_id}")
        ports = self._by_console.get(device.console_id, {})
        ports.pop(device.port, None)
        return device

    def unplug_console(self, console_id: str) -> List[Device]:
        """Drop every device behind a console (console unplugged)."""
        ports = self._by_console.pop(console_id, {})
        removed = []
        for device_id in list(ports.values()):
            removed.append(self._devices.pop(device_id))
        return removed

    def devices_at(self, console_id: str) -> List[Device]:
        """Devices currently on one console, ordered by port."""
        ports = self._by_console.get(console_id, {})
        return [self._devices[ports[p]] for p in sorted(ports)]

    def find(
        self, console_id: str, device_class: DeviceClass
    ) -> Optional[Device]:
        """First device of a class on a console (e.g. *the* keyboard)."""
        for device in self.devices_at(console_id):
            if device.device_class == device_class:
                return device
        return None

    def __len__(self) -> int:
        return len(self._devices)
