"""Packets carried by the simulated interconnection fabric."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import SimulationError

_packet_ids = itertools.count()


@dataclass
class Packet:
    """One datagram on the wire.

    Attributes:
        src: Source endpoint address (string, e.g. "server").
        dst: Destination endpoint address.
        nbytes: Size on the physical link, headers included.
        payload: Opaque content — usually a :class:`repro.core.wire.Datagram`
            or an experiment-specific marker; never inspected by the fabric.
        flow: Optional flow label for per-flow statistics.
        created_at: Simulation time the packet entered the network.
        trace_id: Causal-trace identifier (:mod:`repro.obs`) stamped by
            the sending channel; ``None`` when tracing is off.  The
            fabric never inspects it — links just report events against
            it so the collector can rebuild the packet's itinerary.
    """

    src: str
    dst: str
    nbytes: int
    payload: Any = None
    flow: Optional[str] = None
    created_at: float = 0.0
    trace_id: Optional[int] = None
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    def __post_init__(self) -> None:
        if self.nbytes <= 0:
            raise SimulationError(f"packet size must be positive, got {self.nbytes}")
