"""Discrete-event network simulation substrate.

Models the paper's interconnection fabric: dedicated, switched, full-duplex
100 Mbps Ethernet (Section 2.1), as well as the constrained links used for
the scalability study (Section 5.4, Figure 6) and the shared-uplink
contention experiment (Section 6.2, Figure 11).
"""

from repro.netsim.engine import Simulator
from repro.netsim.packet import Packet
from repro.netsim.link import Link, LinkStats
from repro.netsim.switch import Switch
from repro.netsim.transport import Endpoint, Network, ReplayBuffer

__all__ = [
    "Simulator",
    "Packet",
    "Link",
    "LinkStats",
    "Switch",
    "Endpoint",
    "Network",
    "ReplayBuffer",
]
