"""Micro-operation timing model of the Sun Ray 1 console.

Table 5 of the paper states each display command's cost as a startup
constant plus a per-pixel increment.  This module *derives* those numbers
from a decomposition into micro-operations of the console hardware — a
100 MHz microSPARC-IIep (10 ns cycle) moving data between the network
interface, memory, and the ATI Rage 128 graphics controller:

* every command pays protocol parsing plus graphics-controller setup;
* SET pays per-pixel to read packed 3-byte pixels and expand them to the
  4-byte framebuffer format (Section 4.3 calls this out explicitly);
* BITMAP pays a large one-time controller state setup, then only a bit
  test per pixel since the controller does the expansion;
* FILL and COPY are executed almost entirely by the accelerator;
* CSCS pays a large controller configuration cost plus per-pixel
  unpacking (depth-dependent) and color-space conversion.

The model additionally charges a small per-row overhead (span setup in
the blitter) that the published two-parameter model absorbs into its
per-pixel slope; the calibration experiment shows the paper's fitting
procedure recovers Table 5's constants from this richer model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ProtocolError
from repro.core import commands as cmd
from repro.core.commands import Opcode
from repro.units import NANOSECOND

#: Cycle time of the 100 MHz microSPARC-IIep, in ns.
CYCLE_NS = 10.0


@dataclass(frozen=True)
class MicroOpCosts:
    """Individual micro-operation costs, in nanoseconds.

    The constants are calibrated so the derived linear model lands on
    Table 5; the *decomposition* is what carries information (which
    commands touch memory per pixel, which offload to the accelerator).
    """

    # Fixed per-command work.
    parse_command_ns: float = 1400.0      # header validation, dispatch
    fb_setup_ns: float = 2000.0           # clip/window registers
    bitmap_state_ns: float = 6080.0       # fg/bg/stipple state (extra)
    cscs_config_ns: float = 20600.0       # scaler + CSC matrix setup (extra)
    # Per-pixel work.
    mem_read_byte_ns: float = 50.0        # uncached DRAM byte read
    expand_pixel_ns: float = 40.0         # 3B -> 4B shift/mask
    write_pixel_ns: float = 80.0          # store to framebuffer aperture
    bitmap_bit_test_ns: float = 15.75     # shift/test/advance (controller-fed)
    accel_fill_pixel_ns: float = 2.0      # Rage 128 solid fill throughput
    accel_copy_pixel_ns: float = 10.0     # Rage 128 screen-to-screen blit
    cscs_convert_pixel_ns: float = 120.0  # YUV->RGB multiply-adds
    cscs_write_pixel_ns: float = 20.0     # store converted pixel
    # Second-order effects absorbed by the paper's linear fit: the 2-D
    # blitter pays a span setup per row of the destination region.
    row_overhead_ns: float = 30.0


#: Per-pixel bitstream unpack cost for each CSCS depth, in ns.  Not linear
#: in bits: 16 and 8 bpp payload fields are byte/nibble aligned, while the
#: 5 bpp layout uses the narrowest fields (cheapest to shift out in bulk)
#: and 12 bpp pays mixed alignment.  Values measured on the prototype
#: (Table 5 minus the conversion + write terms).
CSCS_UNPACK_NS = {16: 65.0, 12: 53.0, 8: 38.0, 5: 10.0}


def cscs_unpack_ns(bits_per_pixel: int) -> float:
    """Unpack cost per pixel for a CSCS depth, interpolating gaps."""
    if bits_per_pixel in CSCS_UNPACK_NS:
        return CSCS_UNPACK_NS[bits_per_pixel]
    depths = sorted(CSCS_UNPACK_NS)
    if bits_per_pixel <= depths[0]:
        return CSCS_UNPACK_NS[depths[0]]
    if bits_per_pixel >= depths[-1]:
        return CSCS_UNPACK_NS[depths[-1]]
    for lo, hi in zip(depths, depths[1:]):
        if lo <= bits_per_pixel <= hi:
            t = (bits_per_pixel - lo) / (hi - lo)
            return CSCS_UNPACK_NS[lo] + t * (CSCS_UNPACK_NS[hi] - CSCS_UNPACK_NS[lo])
    raise ProtocolError(f"cannot interpolate CSCS depth {bits_per_pixel}")


class MicroOpModel:
    """Evaluates console decode time for commands from micro-operations.

    This is the "hardware" the calibration experiment probes.  Compare
    with :class:`repro.core.costs.ConsoleCostModel`, which is the paper's
    published two-parameter abstraction of the same machine.
    """

    def __init__(self, costs: MicroOpCosts = MicroOpCosts()) -> None:
        self.costs = costs

    # -- published-model derivation ---------------------------------------
    def derived_startup_ns(self, opcode: Opcode, bits_per_pixel: int = 16) -> float:
        """The startup constant implied by the decomposition."""
        c = self.costs
        base = c.parse_command_ns + c.fb_setup_ns
        if opcode == Opcode.BITMAP:
            return base + c.bitmap_state_ns
        if opcode == Opcode.CSCS:
            return base + c.cscs_config_ns
        if opcode in (Opcode.SET, Opcode.FILL, Opcode.COPY):
            return base
        raise ProtocolError(f"not a display opcode: {opcode}")

    def derived_per_pixel_ns(self, opcode: Opcode, bits_per_pixel: int = 16) -> float:
        """The per-pixel slope implied by the decomposition."""
        c = self.costs
        if opcode == Opcode.SET:
            return 3 * c.mem_read_byte_ns + c.expand_pixel_ns + c.write_pixel_ns
        if opcode == Opcode.BITMAP:
            return c.mem_read_byte_ns / 8.0 + c.bitmap_bit_test_ns
        if opcode == Opcode.FILL:
            return c.accel_fill_pixel_ns
        if opcode == Opcode.COPY:
            return c.accel_copy_pixel_ns
        if opcode == Opcode.CSCS:
            return (
                c.cscs_convert_pixel_ns
                + c.cscs_write_pixel_ns
                + cscs_unpack_ns(bits_per_pixel)
            )
        raise ProtocolError(f"not a display opcode: {opcode}")

    # -- direct evaluation (what the probe measures) ------------------------
    def service_time(self, command: cmd.DisplayCommand) -> float:
        """Decode time in seconds, including the per-row second-order term."""
        opcode = command.opcode
        if isinstance(command, cmd.CscsCommand):
            pixels = command.source_pixels
            rows = command.src_h
            per_pixel = self.derived_per_pixel_ns(opcode, command.bits_per_pixel)
        else:
            pixels = command.pixels
            rows = command.rect.h
            per_pixel = self.derived_per_pixel_ns(opcode)
        startup = self.derived_startup_ns(opcode)
        row_term = 0.0
        if opcode in (Opcode.SET, Opcode.BITMAP, Opcode.FILL, Opcode.COPY):
            row_term = self.costs.row_overhead_ns * rows
        total_ns = startup + per_pixel * pixels + row_term
        return total_ns * NANOSECOND

    def sustained_rate(self, command: cmd.DisplayCommand) -> float:
        """Maximum commands/second the console can decode back-to-back.

        This is what the paper's probe observes: the transmission rate
        beyond which the console begins dropping commands (Section 4.3).
        """
        return 1.0 / self.service_time(command)
