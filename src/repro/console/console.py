"""The SLIM console: network interface + decoder + timed processing queue.

A console is "merely an I/O multiplexor connected to a network"
(Section 1.1).  This class glues together the pieces built elsewhere:

* a :class:`~repro.core.wire.WireCodec` reassembling datagrams,
* a :class:`~repro.core.decoder.SlimDecoder` mutating the local
  framebuffer,
* a :class:`~repro.console.microops.MicroOpModel` (or the published
  :class:`~repro.core.costs.ConsoleCostModel`) charging decode time,
* a bounded command queue — when commands arrive faster than the decode
  loop drains them, the console drops them, which is exactly the
  behaviour the paper's sustained-rate probe exploits (Section 4.3),
* a :class:`~repro.core.bandwidth.BandwidthAllocator` for multimedia
  senders (Section 7).

It can run attached to the discrete-event simulator (packets in, timed
decode) or stand-alone (immediate decode with virtual-time accounting),
which is how the fidelity tests and calibration probes use it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Union

from repro.errors import ProtocolError
from repro.core import commands as cmd
from repro.core.bandwidth import BandwidthAllocator
from repro.core.costs import ConsoleCostModel
from repro.core.decoder import SlimDecoder
from repro.core.wire import Datagram, WireCodec
from repro.console.microops import MicroOpModel
from repro.framebuffer.framebuffer import FrameBuffer
from repro.netsim.backend import SimulationBackend
from repro.netsim.packet import Packet
from repro.netsim.transport import Endpoint
from repro.obs.context import ObsContext, get_obs
from repro.telemetry.metrics import MetricsRegistry, get_registry
from repro.units import ETHERNET_100

#: Command-queue occupancy buckets (the Sun Ray buffers a few hundred).
QUEUE_DEPTH_BUCKETS = (0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512)

TimingModel = Union[MicroOpModel, ConsoleCostModel]


@dataclass
class ConsoleStats:
    """Counters the console maintains for the experiments."""

    commands_processed: int = 0
    commands_dropped: int = 0
    busy_time: float = 0.0
    service_times: List[float] = field(default_factory=list)

    def drop_rate(self) -> float:
        total = self.commands_processed + self.commands_dropped
        return self.commands_dropped / total if total else 0.0


class Console:
    """A simulated Sun Ray 1 desktop unit.

    Args:
        width: Display width in pixels.
        height: Display height in pixels.
        timing: Decode-cost model; defaults to the micro-op model.
        sim: Event engine for timed operation; None for stand-alone use.
        address: Fabric address when attached to a network.
        queue_limit: Maximum commands buffered awaiting decode.  The Sun
            Ray 1 has 2 MB in use total (Section 2.3); a few hundred
            queued commands is generous.
        link_rate_bps: Capacity advertised to the bandwidth allocator.
        record_service_times: Keep per-command service times (Figure 7).
        registry: Telemetry sink; defaults to the process-global
            registry (a no-op unless telemetry is enabled).
        obs: Observability context; defaults to the process-global one
            (usually ``None``).  Supplies the causal tracer that stamps
            decode-start and paint times on traced commands.
    """

    def __init__(
        self,
        width: int = 1280,
        height: int = 1024,
        timing: Optional[TimingModel] = None,
        sim: Optional[SimulationBackend] = None,
        address: str = "console",
        queue_limit: int = 512,
        link_rate_bps: float = ETHERNET_100,
        record_service_times: bool = False,
        registry: Optional[MetricsRegistry] = None,
        obs: Optional[ObsContext] = None,
    ) -> None:
        self.framebuffer = FrameBuffer(width, height)
        self.timing = timing if timing is not None else MicroOpModel()
        self.sim = sim
        self.address = address
        self.queue_limit = queue_limit
        self.record_service_times = record_service_times
        self.decoder = SlimDecoder(self.framebuffer)
        self.codec = WireCodec()
        self.allocator = BandwidthAllocator(link_rate_bps)
        self.stats = ConsoleStats()
        self._queue: List[cmd.Command] = []
        self._busy_until = 0.0
        self._decoding = False
        self.on_input: Optional[Callable[[cmd.Command], None]] = None
        #: Virtual clock used when running stand-alone (no simulator).
        self.virtual_time = 0.0
        obs = obs if obs is not None else get_obs()
        self._trace = obs.tracer if obs is not None else None
        self._metrics = registry if registry is not None else get_registry()
        if self._metrics.enabled:
            m = self._metrics
            self._m_dropped = m.counter("console.decode.dropped", console=address)
            self._m_queue_depth = m.histogram(
                "console.queue.depth", buckets=QUEUE_DEPTH_BUCKETS, console=address
            )
            self._m_service = m.histogram(
                "console.decode.service_seconds", console=address
            )

    def _record_decode(self, command: cmd.Command, service: float) -> None:
        """Telemetry for one decoded command (per-opcode count + cost)."""
        m = self._metrics
        opcode = (
            command.opcode.name
            if isinstance(command, cmd.DisplayCommand)
            else type(command).__name__
        )
        m.counter("console.decode.count", opcode=opcode).inc()
        m.counter("console.decode.seconds", opcode=opcode).inc(service)
        self._m_service.observe(service)

    # ------------------------------------------------------------------
    # Stand-alone operation (calibration probes, fidelity tests).
    # ------------------------------------------------------------------
    def service_time(self, command: cmd.Command) -> float:
        """Decode time this console's model charges for a command."""
        if not isinstance(command, cmd.DisplayCommand):
            return 0.0
        return self.timing.service_time(command)

    def process(self, command: cmd.Command, apply_pixels: bool = True) -> float:
        """Decode one command immediately; returns its service time.

        With ``apply_pixels`` False only timing is simulated (used when
        commands are accounting-only).
        """
        service = self.service_time(command)
        if apply_pixels and isinstance(command, cmd.DisplayCommand):
            self.decoder.apply(command)
        self.stats.commands_processed += 1
        self.stats.busy_time += service
        self.virtual_time += service
        if self.record_service_times and isinstance(command, cmd.DisplayCommand):
            self.stats.service_times.append(service)
        if self._metrics.enabled:
            self._record_decode(command, service)
        return service

    def offered_rate_sustainable(
        self, command: cmd.DisplayCommand, rate_per_second: float
    ) -> bool:
        """Would the console keep up with this command at this rate?

        The calibration probe ramps the offered rate until this turns
        False (commands start dropping).
        """
        if rate_per_second <= 0:
            raise ProtocolError("offered rate must be positive")
        return self.service_time(command) <= 1.0 / rate_per_second

    # ------------------------------------------------------------------
    # Simulated (timed) operation.
    # ------------------------------------------------------------------
    def make_endpoint(self) -> Endpoint:
        """Create the netsim endpoint that feeds this console."""
        return Endpoint(self.address, on_receive=self.receive_packet)

    def receive_packet(self, packet: Packet) -> None:
        """Handle one datagram off the wire."""
        payload = packet.payload
        if isinstance(payload, Datagram):
            result = self.codec.accept(payload)
            if result is None:
                return
            command, _seq = result
        elif isinstance(payload, cmd.Command):
            command = payload  # pre-decoded fast path for large sims
        else:
            return
        self.enqueue(command)

    def enqueue(self, command: cmd.Command) -> bool:
        """Queue a command for decode; False when the queue overflowed."""
        if not isinstance(command, cmd.DisplayCommand):
            # Input echoes / status: negligible handling cost, no queue.
            self.stats.commands_processed += 1
            if self._metrics.enabled:
                self._record_decode(command, 0.0)
            return True
        if len(self._queue) >= self.queue_limit:
            self.stats.commands_dropped += 1
            if self._metrics.enabled:
                self._m_dropped.inc()
            if self._trace is not None and self.sim is not None:
                self._trace.command_dropped(command, self.sim.now)
            return False
        self._queue.append(command)
        if self._metrics.enabled:
            self._m_queue_depth.observe(len(self._queue))
        self._maybe_start_decode()
        return True

    def _maybe_start_decode(self) -> None:
        if self.sim is None:
            # Stand-alone: drain synchronously.
            while self._queue:
                self.process(self._queue.pop(0))
            return
        if self._decoding or not self._queue:
            return
        self._decoding = True
        command = self._queue.pop(0)
        service = self.service_time(command)
        materialized = not self._is_accounting_only(command)
        if self._trace is not None:
            self._trace.decode_start(command, self.sim.now)

        def finish() -> None:
            if materialized:
                self.decoder.apply(command)
            self.stats.commands_processed += 1
            self.stats.busy_time += service
            if self.record_service_times:
                self.stats.service_times.append(service)
            if self._metrics.enabled:
                self._record_decode(command, service)
            if self._trace is not None:
                self._trace.painted(command, self.sim.now)
            self._decoding = False
            self._maybe_start_decode()

        self.sim.schedule(service, finish)

    @staticmethod
    def _is_accounting_only(command: cmd.Command) -> bool:
        if isinstance(command, cmd.SetCommand):
            return command.data is None
        if isinstance(command, cmd.BitmapCommand):
            return command.bitmap is None
        if isinstance(command, cmd.CscsCommand):
            return command.payload is None
        return False

    # ------------------------------------------------------------------
    # Input devices (keyboard / mouse out to the server).
    # ------------------------------------------------------------------
    def key_event(self, code: int, pressed: bool) -> cmd.KeyEvent:
        """Produce a key event; forwarded via ``on_input`` when wired."""
        event = cmd.KeyEvent(code=code, pressed=pressed)
        if self.on_input is not None:
            self.on_input(event)
        return event

    def mouse_event(self, x: int, y: int, buttons: int = 0) -> cmd.MouseEvent:
        """Produce a mouse report; forwarded via ``on_input`` when wired."""
        event = cmd.MouseEvent(x=x, y=y, buttons=buttons)
        if self.on_input is not None:
            self.on_input(event)
        return event

    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return len(self._queue)
