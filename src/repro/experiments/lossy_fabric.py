"""Lossy-fabric ablation: display-protocol recovery vs packet loss.

The paper's error recovery scheme (Section 2.2) is exercised end to end:
one :class:`~repro.transport.DisplayChannel` session per loss rate runs
a Netscape-like update stream across a fabric that randomly corrupts
packets on the server's link pair — display traffic *and* the console's
NACKs are both lossy.  Each session reports what recovery cost: NACK
packets and bytes on the reverse path, re-encoded recovery bytes as a
fraction of total wire bytes, full-screen refresh fallbacks, and the
mean in-band recovery latency.  Every session must end pixel-exact with
the status exchange quiesced — the correctness bar is part of the table.

A fig11-style network yardstick (64 B up / 1200 B down / 150 ms think)
runs on an identically lossy fabric for each rate, so the display
protocol's recovery cost can be read against the raw round-trip
behaviour of the same network.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.experiments.runner import (
    ExperimentConfig,
    ExperimentResult,
    experiment,
)
from repro.framebuffer import FrameBuffer
from repro.loadgen.yardstick import NetworkYardstick
from repro.netsim.backend import LocalBackend
from repro.netsim.profiles import get_profile
from repro.netsim.transport import Endpoint, Network
from repro.telemetry.metrics import MetricsRegistry
from repro.transport import DisplayChannel
from repro.units import ETHERNET_100
from repro.workloads.apps import NETSCAPE

#: Random per-packet loss probabilities swept by the ablation.
LOSS_RATES = (0.0, 0.02, 0.05, 0.1, 0.2)

DEFAULT_UPDATES = 20
DEFAULT_SEED = 42
DISPLAY_W, DISPLAY_H = 320, 240

#: Simulated seconds of yardstick probing per loss rate.
YARDSTICK_SECONDS = 20.0

#: Named WAN/mobile profiles probed alongside the i.i.d. sweep: the
#: burst-loss regimes whose *pattern* (not just rate) stresses recovery.
PROFILE_CELLS = ("dsl", "wifi", "cellular")

#: Profile cells probe longer: burst-loss episodes are rare events, and
#: a 20 s window can sample zero of them at some seeds.
PROFILE_YARDSTICK_SECONDS = 60.0


def run_lossy_session(
    loss_rate: float,
    updates: int = DEFAULT_UPDATES,
    seed: int = DEFAULT_SEED,
    registry: Optional[MetricsRegistry] = None,
) -> DisplayChannel:
    """Drive one display session to convergence over a lossy fabric."""
    server_fb = FrameBuffer(DISPLAY_W, DISPLAY_H)
    channel = DisplayChannel(
        server_fb, loss_rate=loss_rate, seed=seed, registry=registry
    )
    driver = channel.make_driver(track_baselines=False)
    rng = np.random.default_rng(seed)
    display = NETSCAPE.display_model()
    display.display_w, display.display_h = DISPLAY_W, DISPLAY_H
    display.display_area = DISPLAY_W * DISPLAY_H
    for index in range(updates):
        driver.update(channel.sim.now, display.sample_update(rng, seed=index))
        # Drains once the status exchange confirms every seq arrived.
        channel.sim.run()
    return channel


def yardstick_on_lossy_fabric(
    loss_rate: float,
    sim_seconds: float = YARDSTICK_SECONDS,
    seed: int = DEFAULT_SEED,
) -> Tuple[float, float]:
    """(mean RTT seconds, observed loss rate) of the fig11 probe."""
    sim = LocalBackend()
    network = Network(sim, default_rate_bps=ETHERNET_100)
    yardstick = NetworkYardstick(
        sim, network, console_addr="console", server_addr="server"
    )
    network.attach(
        Endpoint("console", on_receive=yardstick.handle_console_packet)
    )
    rng = np.random.default_rng(seed) if loss_rate > 0 else None
    network.attach(
        Endpoint("server", on_receive=yardstick.handle_server_packet),
        loss_rate=loss_rate,
        rng=rng,
    )
    yardstick.start()
    sim.run_until(sim_seconds)
    if not yardstick.rtts:
        return float("inf"), yardstick.loss_rate()
    return yardstick.mean_rtt(), yardstick.loss_rate()


def yardstick_on_profile(
    profile_name: str,
    sim_seconds: float = PROFILE_YARDSTICK_SECONDS,
    seed: int = DEFAULT_SEED,
) -> Tuple[float, float]:
    """(mean RTT seconds, observed loss rate) across a named profile.

    The console sits behind the profile's access link (the WAN/mobile
    deployment shape); the server stays on the clean switched fabric.
    """
    profile = get_profile(profile_name)
    sim = LocalBackend()
    network = Network(sim, default_rate_bps=ETHERNET_100)
    yardstick = NetworkYardstick(
        sim, network, console_addr="console", server_addr="server"
    )
    rng = np.random.default_rng(seed) if profile.randomized else None
    network.attach(
        Endpoint("console", on_receive=yardstick.handle_console_packet),
        profile=profile,
        rng=rng,
    )
    network.attach(
        Endpoint("server", on_receive=yardstick.handle_server_packet)
    )
    yardstick.start()
    sim.run_until(sim_seconds)
    if not yardstick.rtts:
        return float("inf"), yardstick.loss_rate()
    return yardstick.mean_rtt(), yardstick.loss_rate()


@experiment(
    "lossy_fabric",
    title="Display-protocol loss recovery vs fabric loss rate",
    section="2.2",
)
def run(config: ExperimentConfig) -> ExperimentResult:
    seed = config.get("seed", DEFAULT_SEED)
    updates = int(config.get("updates", DEFAULT_UPDATES))
    registry = config.resolved_registry()
    rows = []
    for loss_rate in LOSS_RATES:
        channel = run_lossy_session(
            loss_rate, updates=updates, seed=seed, registry=registry
        )
        server = channel.server_channel.stats
        console = channel.console_channel.stats
        uplink = channel.network.uplink("server")
        downlink = channel.network.downlink("server")
        overhead = (
            100.0 * server.recovery_bytes / server.wire_bytes
            if server.wire_bytes
            else 0.0
        )
        rtt, probe_loss = yardstick_on_lossy_fabric(loss_rate, seed=seed)
        rows.append(
            {
                "loss rate": f"{loss_rate:.0%}",
                "pixel exact": channel.converged and channel.resolved,
                "recoveries": channel.recoveries,
                "refreshes": channel.refreshes,
                "nacks": console.nacks_sent,
                "nack KB": round(console.nack_bytes / 1024, 2),
                "recovery overhead %": round(overhead, 1),
                "recovery ms": round(1000 * console.mean_recovery_latency(), 2)
                if console.recoveries_timed
                else 0.0,
                # Corruption vs congestion are distinct counters.
                "wire lost": uplink.stats.packets_lost
                + downlink.stats.packets_lost,
                "queue dropped": uplink.stats.packets_dropped
                + downlink.stats.packets_dropped,
                "yardstick RTT ms": "inf"
                if rtt == float("inf")
                else round(1000 * rtt, 2),
                "yardstick loss": f"{probe_loss:.0%}",
            }
        )
    for profile_name in PROFILE_CELLS:
        profile = get_profile(profile_name)
        rtt, probe_loss = yardstick_on_profile(profile_name, seed=seed)
        rows.append(
            {
                "loss rate": profile_name,
                "mean loss": f"{profile.mean_loss_rate():.1%}",
                "yardstick RTT ms": "inf"
                if rtt == float("inf")
                else round(1000 * rtt, 2),
                "yardstick loss": f"{probe_loss:.0%}",
            }
        )
    return ExperimentResult(
        experiment_id="lossy_fabric",
        title="Display-protocol loss recovery vs fabric loss rate",
        rows=rows,
        notes=[
            "each session: Netscape-style update stream into a "
            f"{DISPLAY_W}x{DISPLAY_H} console over a switched fabric that "
            "corrupts packets on the server's links (NACKs are lossy too)",
            "recovery is stateless: the server re-encodes damaged regions "
            "from its current framebuffer; full refresh only after "
            "damage-map eviction",
            "'pixel exact' requires the console framebuffer to equal the "
            "server's and the status exchange to have confirmed every seq",
            "profile rows probe the named WAN/mobile regimes (console "
            "behind the access link); burst loss (Gilbert-Elliott) hurts "
            "more than i.i.d. loss at the same mean rate",
        ],
    )
