"""Capacity planning for a SLIM workgroup server.

The sharing results (Figures 9-12) as a planner: describe the user
population and get a server sizing plus a simulated check of the
interactive yardstick on that sizing::

    python -m repro.tools.capacity --users Netscape=10 PIM=20
    python -m repro.tools.capacity --users Photoshop=8 --cpus 2 --simulate
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Tuple

from repro.errors import ReproError, WorkloadError
from repro.experiments.fig9 import POOR_THRESHOLD, yardstick_latency
from repro.units import MBPS
from repro.workloads.apps import BENCHMARK_APPS
from repro.workloads.mixes import WorkgroupMix


def parse_users(specs: List[str]) -> WorkgroupMix:
    """Parse ['Netscape=10', 'PIM=20'] into a mix."""
    counts: List[Tuple[str, int]] = []
    for spec in specs:
        if "=" not in spec:
            raise ReproError(f"expected App=count, got {spec!r}")
        name, _, count_text = spec.partition("=")
        try:
            count = int(count_text)
        except ValueError as exc:
            raise ReproError(f"bad count in {spec!r}") from exc
        counts.append((name, count))
    try:
        return WorkgroupMix("cli", tuple(counts))
    except WorkloadError as exc:
        raise ReproError(str(exc)) from exc


def plan(
    mix: WorkgroupMix,
    cpus: int = 0,
    simulate: bool = False,
    duration: float = 120.0,
    sim_seconds: float = 45.0,
) -> Dict[str, object]:
    """Produce the sizing report (and optional simulated check)."""
    suggested = mix.estimated_cpus_needed()
    chosen = cpus or suggested
    report: Dict[str, object] = {
        "users": mix.total_users,
        "demand_ref_cpus": mix.mean_cpu_demand(),
        "memory_mb": mix.mean_memory_mb(),
        "suggested_cpus": suggested,
        "chosen_cpus": chosen,
    }
    if simulate:
        profiles = mix.build_profiles(duration=duration)
        added = yardstick_latency(
            profiles,
            n_users=len(profiles),
            num_cpus=chosen,
            sim_seconds=sim_seconds,
        )
        report["yardstick_added_ms"] = added * 1000
        report["interactive_ok"] = added < POOR_THRESHOLD
        bandwidth = sum(p.mean_bandwidth_bps() for p in profiles)
        report["display_traffic_mbps"] = bandwidth / MBPS
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.capacity",
        description="Size a SLIM server for a workgroup.",
    )
    parser.add_argument(
        "--users",
        nargs="+",
        required=True,
        metavar="APP=N",
        help=f"population, apps: {', '.join(BENCHMARK_APPS)}",
    )
    parser.add_argument("--cpus", type=int, default=0, help="override CPU count")
    parser.add_argument(
        "--simulate",
        action="store_true",
        help="run the yardstick check on the sizing (slower)",
    )
    args = parser.parse_args(argv)

    mix = parse_users(args.users)
    report = plan(mix, cpus=args.cpus, simulate=args.simulate)
    print(
        f"{report['users']} users: demand {report['demand_ref_cpus']:.2f} "
        f"reference CPUs, ~{report['memory_mb']:.0f} MB resident"
    )
    print(
        f"suggested sizing: {report['suggested_cpus']} CPU(s); "
        f"planning for {report['chosen_cpus']}"
    )
    if args.simulate:
        verdict = "OK" if report["interactive_ok"] else "POOR"
        print(
            f"simulated yardstick: +{report['yardstick_added_ms']:.0f} ms "
            f"per event -> interactive service {verdict} "
            f"(limit {POOR_THRESHOLD * 1000:.0f} ms)"
        )
        print(
            f"display traffic: {report['display_traffic_mbps']:.2f} Mbps "
            "aggregate (a 100 Mbps IF is not the constraint)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
