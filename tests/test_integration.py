"""Integration tests across modules: paint -> encode -> wire -> decode.

These exercise the promise the whole system rests on — the console is a
faithful remote framebuffer — over the real wire format and, in the
timed variants, over the simulated interconnect fabric.
"""

import numpy as np
import pytest

from repro.core import commands as cmd
from repro.core.encoder import EncoderConfig, SlimEncoder
from repro.core.wire import Datagram, WireCodec
from repro.console import Console
from repro.framebuffer import FrameBuffer, PaintKind, PaintOp, Painter, Rect
from repro.netsim import Endpoint, Network, Packet, Simulator
from repro.server.slimdriver import SlimDriver
from repro.units import ETHERNET_100


def wire_channel(console):
    """A send() callback that pushes commands through real datagrams."""
    tx, rx = WireCodec(), WireCodec()

    def send(command):
        for datagram in tx.fragment(command):
            result = rx.accept(Datagram.from_bytes(datagram.to_bytes()))
            if result is not None:
                console.enqueue(result[0])

    return send


def a_desktop_scene(w, h):
    return [
        PaintOp(PaintKind.FILL, Rect(0, 0, w, h), color=(40, 44, 52)),
        PaintOp(PaintKind.TEXT, Rect(8, 8, w // 2, 52), seed=1, char_count=120),
        PaintOp(PaintKind.IMAGE, Rect(w // 2, 8, w // 3, h // 3), seed=2, uniform_fraction=0.25),
        PaintOp(PaintKind.FILL, Rect(8, h - 24, w - 16, 16), color=(200, 200, 210)),
        PaintOp(PaintKind.COPY, Rect(8, 8, w // 2, 39), src=Rect(8, 21, w // 2, 39)),
    ]


class TestLosslessFidelity:
    def test_full_pipeline_pixel_exact(self):
        w, h = 320, 240
        server_fb = FrameBuffer(w, h)
        console = Console(w, h)
        driver = SlimDriver(
            encoder=SlimEncoder(materialize=True),
            framebuffer=server_fb,
            send=wire_channel(console),
        )
        for op in a_desktop_scene(w, h):
            driver.update(0.0, [op])  # paints then encodes each op
        assert server_fb.equals(console.framebuffer)

    def test_pipeline_with_every_encoder_ablation(self):
        """Correctness must hold regardless of which commands are enabled."""
        for config in (
            EncoderConfig(use_fill=False),
            EncoderConfig(use_bitmap=False),
            EncoderConfig(use_copy=False),
            EncoderConfig(use_fill=False, use_bitmap=False, use_copy=False),
        ):
            w, h = 160, 120
            server_fb = FrameBuffer(w, h)
            console = Console(w, h)
            driver = SlimDriver(
                encoder=SlimEncoder(config=config, materialize=True),
                framebuffer=server_fb,
                send=wire_channel(console),
            )
            for op in a_desktop_scene(w, h):
                driver.update(0.0, [op])
            assert server_fb.equals(console.framebuffer), config

    def test_video_region_within_tolerance(self):
        w, h = 160, 120
        server_fb = FrameBuffer(w, h)
        console = Console(w, h)
        driver = SlimDriver(
            encoder=SlimEncoder(materialize=True),
            framebuffer=server_fb,
            send=wire_channel(console),
        )
        op = PaintOp(PaintKind.VIDEO, Rect(10, 10, 96, 64), seed=4, bits_per_pixel=16)
        driver.update(0.0, [op])
        region = Rect(10, 10, 96, 64)
        err = np.abs(
            server_fb.read(region).astype(int)
            - console.framebuffer.read(region).astype(int)
        ).mean()
        assert err < 6.0

    def test_incremental_session_stays_synchronized(self, rng):
        """Many random updates: the console never drifts."""
        w, h = 200, 150
        server_fb = FrameBuffer(w, h)
        console = Console(w, h)
        driver = SlimDriver(
            encoder=SlimEncoder(materialize=True),
            framebuffer=server_fb,
            send=wire_channel(console),
        )
        from repro.workloads.apps import NETSCAPE

        display = NETSCAPE.display_model()
        display.display_w, display.display_h = w, h
        display.display_area = w * h
        for i in range(30):
            ops = display.sample_update(rng, seed=i)
            driver.update(float(i), ops)
        assert server_fb.equals(console.framebuffer)


class TestOverTheFabric:
    def test_timed_delivery_through_switch(self):
        sim = Simulator()
        network = Network(sim, default_rate_bps=ETHERNET_100)
        w, h = 160, 120
        console = Console(w, h, sim=sim, address="console")
        network.attach(console.make_endpoint())
        network.attach(Endpoint("server"))
        server_fb = FrameBuffer(w, h)
        tx = WireCodec()

        def send(command):
            for datagram in tx.fragment(command):
                network.send(
                    Packet(
                        src="server",
                        dst="console",
                        nbytes=datagram.wire_nbytes,
                        payload=datagram,
                    )
                )

        driver = SlimDriver(
            encoder=SlimEncoder(materialize=True), framebuffer=server_fb, send=send
        )
        for op in a_desktop_scene(w, h):
            driver.update(sim.now, [op])
        sim.run()
        assert server_fb.equals(console.framebuffer)
        assert sim.now > 0  # time actually passed

    def test_input_travels_console_to_server(self):
        sim = Simulator()
        network = Network(sim, default_rate_bps=ETHERNET_100)
        received = []

        def server_rx(packet):
            if isinstance(packet.payload, Datagram):
                codec = WireCodec()
                result = codec.accept(packet.payload)
                if result:
                    received.append(result[0])

        console = Console(64, 48, sim=sim, address="console")
        network.attach(console.make_endpoint())
        network.attach(Endpoint("server", on_receive=server_rx))
        tx = WireCodec()

        def forward(event):
            for datagram in tx.fragment(event):
                network.send(
                    Packet(
                        src="console",
                        dst="server",
                        nbytes=datagram.wire_nbytes,
                        payload=datagram,
                    )
                )

        console.on_input = forward
        console.key_event(0x41, True)
        console.mouse_event(10, 20, 1)
        sim.run()
        assert len(received) == 2
        assert isinstance(received[0], cmd.KeyEvent)
        assert isinstance(received[1], cmd.MouseEvent)


class TestMobilityOverTheWire:
    def test_hotdesk_restores_exact_screen(self):
        from repro.core.session import (
            AuthenticationManager,
            SessionManager,
            SmartCard,
        )

        auth = AuthenticationManager()
        card = SmartCard(user="u", token="t")
        auth.enroll(card)
        sessions = SessionManager(auth, display_width=96, display_height=64)
        session = sessions.attach(card, "c1")
        painter = Painter(session.framebuffer)
        for op in a_desktop_scene(96, 64):
            painter.apply(op)
        sessions.detach("c1")
        sessions.attach(card, "c2")
        console = Console(96, 64)
        send = wire_channel(console)
        encoder = SlimEncoder(materialize=True)
        for command in encoder.encode_damage(
            session.framebuffer, [session.framebuffer.bounds]
        ):
            send(command)
        assert session.framebuffer.equals(console.framebuffer)


class TestDriverTraceConsistency:
    def test_trace_bytes_match_wire_bytes(self):
        """The instrumented driver's byte accounting equals actual bytes."""
        from repro.core.wire import message_wire_nbytes

        w, h = 160, 120
        server_fb = FrameBuffer(w, h)
        sent = []
        driver = SlimDriver(
            encoder=SlimEncoder(materialize=True),
            framebuffer=server_fb,
            send=sent.append,
        )
        op = PaintOp(PaintKind.TEXT, Rect(0, 0, 80, 39), seed=1)
        record = driver.update(0.0, [op])
        assert record.wire_bytes == sum(message_wire_nbytes(c) for c in sent)

    def test_service_time_matches_console(self):
        w, h = 160, 120
        server_fb = FrameBuffer(w, h)
        console = Console(w, h)
        sent = []
        driver = SlimDriver(
            encoder=SlimEncoder(materialize=True),
            framebuffer=server_fb,
            send=sent.append,
        )
        op = PaintOp(PaintKind.IMAGE, Rect(0, 0, 64, 64), seed=2)
        record = driver.update(0.0, [op])
        actual = sum(console.process(c) for c in sent)
        assert record.service_time == pytest.approx(actual)
