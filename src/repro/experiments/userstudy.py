"""Shared user-study results for the Section 5 experiments.

The paper ran its user studies once and post-processed the logs for every
figure; we do the same — the study is simulated once per configuration
and memoised, and Figures 2, 3, 4, 5, 7, 8 (plus the load profiles for
Figures 9-11) all read from it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.traces import SessionTrace
from repro.workloads.apps import BENCHMARK_APPS, AppProfile
from repro.workloads.session import ResourceProfile, run_user_study

#: Default study size.  The paper used 50 users x >=10 minutes; the
#: default here is sized so the full experiment suite runs in minutes —
#: pass n_users=50 for the full-fidelity version.
DEFAULT_N_USERS = 12
DEFAULT_DURATION = 600.0
DEFAULT_SEED = 1999


@dataclass(frozen=True)
class StudyKey:
    n_users: int
    duration: float
    seed: int


_cache: Dict[Tuple[StudyKey, str], Tuple[List[SessionTrace], List[ResourceProfile]]] = {}


def get_study(
    app: AppProfile,
    n_users: int = DEFAULT_N_USERS,
    duration: float = DEFAULT_DURATION,
    seed: int = DEFAULT_SEED,
) -> Tuple[List[SessionTrace], List[ResourceProfile]]:
    """Traces and resource profiles for one app's study (memoised)."""
    key = (StudyKey(n_users, duration, seed), app.name)
    if key not in _cache:
        _cache[key] = run_user_study(app, n_users=n_users, duration=duration, seed=seed)
    return _cache[key]


def all_studies(
    n_users: int = DEFAULT_N_USERS,
    duration: float = DEFAULT_DURATION,
    seed: int = DEFAULT_SEED,
) -> Dict[str, Tuple[List[SessionTrace], List[ResourceProfile]]]:
    """Studies for every Table 2 GUI application."""
    return {
        name: get_study(app, n_users=n_users, duration=duration, seed=seed)
        for name, app in BENCHMARK_APPS.items()
    }


def clear_cache() -> None:
    """Drop memoised studies (tests use this to control memory)."""
    _cache.clear()
