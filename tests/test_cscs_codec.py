"""Unit tests for the CSCS payload codec."""

import numpy as np
import pytest

from repro.core import cscs_codec
from repro.core.commands import cscs_plane_bytes
from repro.errors import ProtocolError
from repro.framebuffer.regions import Rect
from repro.framebuffer.painter import synth_video_frame


def frame(w=32, h=24, seed=1):
    return synth_video_frame(Rect(0, 0, w, h), seed)


class TestEncode:
    def test_size_matches_model_every_depth(self):
        rgb = frame()
        for bpp in (16, 12, 8, 6, 5):
            payload = cscs_codec.encode_frame(rgb, bpp)
            assert len(payload) == cscs_plane_bytes(32, 24, bpp)

    def test_odd_dimensions(self):
        rgb = frame(w=17, h=11)
        for bpp in (16, 12, 8, 6, 5):
            payload = cscs_codec.encode_frame(rgb, bpp)
            assert len(payload) == cscs_plane_bytes(17, 11, bpp)

    def test_unknown_depth(self):
        with pytest.raises(ProtocolError):
            cscs_codec.encode_frame(frame(), 24)

    def test_bad_shape(self):
        with pytest.raises(ProtocolError):
            cscs_codec.encode_frame(np.zeros((4, 4), np.uint8), 16)

    def test_deterministic(self):
        rgb = frame()
        assert cscs_codec.encode_frame(rgb, 12) == cscs_codec.encode_frame(rgb, 12)


class TestDecode:
    def test_roundtrip_quality_16bpp(self):
        rgb = frame()
        decoded = cscs_codec.decode_frame(
            cscs_codec.encode_frame(rgb, 16), 32, 24, 16
        )
        err = np.abs(rgb.astype(int) - decoded.astype(int)).mean()
        assert err < 6.0

    def test_quality_degrades_monotonically(self):
        rgb = frame(w=64, h=48)
        errors = [cscs_codec.roundtrip_error(rgb, bpp) for bpp in (16, 12, 8, 5)]
        assert errors[0] <= errors[1] <= errors[2] <= errors[3]

    def test_even_lowest_depth_preserves_structure(self):
        rgb = frame(w=64, h=48)
        assert cscs_codec.roundtrip_error(rgb, 5) < 40.0

    def test_uniform_frame_near_exact(self):
        rgb = np.full((16, 16, 3), 120, dtype=np.uint8)
        decoded = cscs_codec.decode_frame(
            cscs_codec.encode_frame(rgb, 16), 16, 16, 16
        )
        assert np.abs(rgb.astype(int) - decoded.astype(int)).max() <= 3

    def test_wrong_payload_size_rejected(self):
        with pytest.raises(ProtocolError):
            cscs_codec.decode_frame(b"\x00" * 10, 32, 24, 16)

    def test_wrong_depth_rejected(self):
        with pytest.raises(ProtocolError):
            cscs_codec.decode_frame(b"", 4, 4, 9)

    def test_odd_dimension_roundtrip(self):
        rgb = frame(w=15, h=9)
        decoded = cscs_codec.decode_frame(
            cscs_codec.encode_frame(rgb, 12), 15, 9, 12
        )
        assert decoded.shape == rgb.shape
