"""Tests for the experiment registry, rendering, and run() smoke paths."""

import pytest

from repro.errors import ReproError
from repro.experiments.runner import (
    ExperimentResult,
    REGISTRY,
    register,
    render_table,
    run_all,
)


class TestResultAndRendering:
    def make(self):
        return ExperimentResult(
            experiment_id="x1",
            title="A title",
            rows=[{"a": 1, "b": 2.5}, {"a": 3, "c": "z"}],
            notes=["a note"],
        )

    def test_column_names_union_in_order(self):
        assert self.make().column_names() == ["a", "b", "c"]

    def test_row_values(self):
        assert self.make().row_values("a") == [1, 3]

    def test_render_contains_everything(self):
        text = render_table(self.make())
        assert "x1" in text and "A title" in text
        assert "2.5" in text
        assert "a note" in text

    def test_render_empty_rows(self):
        text = render_table(ExperimentResult("e", "t"))
        assert "e: t" in text


class TestRegistry:
    def test_all_paper_experiments_registered(self):
        # Importing the package __main__ registers everything.
        import repro.experiments.__main__  # noqa: F401

        expected = {
            "table4", "table5",
            "fig2", "fig3", "fig4", "fig5", "fig6",
            "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
            "multimedia", "ablations",
        }
        assert expected <= set(REGISTRY)

    def test_duplicate_registration_rejected(self):
        register("only-once-test", lambda: ExperimentResult("x", "y"))
        with pytest.raises(ReproError):
            register("only-once-test", lambda: ExperimentResult("x", "y"))

    def test_run_all_unknown_id(self):
        with pytest.raises(ReproError):
            run_all(["no-such-experiment"])

    def test_run_all_subset(self):
        register("trivial-test", lambda: ExperimentResult("trivial-test", "t"))
        results = run_all(["trivial-test"])
        assert results[0].experiment_id == "trivial-test"


class TestRunSmoke:
    """Cheap run() smoke tests for modules not covered elsewhere."""

    def test_table4_run(self):
        from repro.experiments.table4 import run

        result = run()
        assert len(result.rows) == 4
        assert any("550" in str(row.values()) for row in result.rows)

    def test_fig12_run(self):
        from repro.experiments.fig12 import run

        result = run(seed=5)
        assert len(result.rows) == 2

    def test_multimedia_run(self):
        from repro.experiments.multimedia import run

        result = run()
        assert len(result.rows) == 7
        assert all("fps" in row for row in result.rows)

    def test_cli_list(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out

    def test_cli_unknown_experiment(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["definitely-not-registered"])

    def test_cli_runs_single_experiment(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["table4"]) == 0
        out = capsys.readouterr().out
        assert "Xmark" in out or "x11perf" in out


class TestUserstudyCache:
    def test_memoised_identity(self):
        from repro.experiments import userstudy
        from repro.workloads.apps import PIM

        a = userstudy.get_study(PIM, n_users=1, duration=30.0, seed=77)
        b = userstudy.get_study(PIM, n_users=1, duration=30.0, seed=77)
        assert a is b  # same cached object

    def test_distinct_configs_distinct_entries(self):
        from repro.experiments import userstudy
        from repro.workloads.apps import PIM

        a = userstudy.get_study(PIM, n_users=1, duration=30.0, seed=77)
        c = userstudy.get_study(PIM, n_users=1, duration=30.0, seed=78)
        assert a is not c

    def test_clear_cache(self):
        from repro.experiments import userstudy
        from repro.workloads.apps import PIM

        a = userstudy.get_study(PIM, n_users=1, duration=30.0, seed=79)
        userstudy.clear_cache()
        b = userstudy.get_study(PIM, n_users=1, duration=30.0, seed=79)
        assert a is not b
