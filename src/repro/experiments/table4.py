"""Table 4: stand-alone benchmarks of the Sun Ray 1 implementation.

Row 1 — response time over a 100 Mbps switched IF.  The paper's echo
experiment measures "the total elapsed time from the instant a keystroke
is generated at the SLIM console to the point at which rendering is
complete and the pixels are guaranteed to be on the display"; the result
was 550 us with a trivial echo application and 3.83 ms typing into Emacs.
We run the same experiment end to end on the simulated fabric: keystroke
datagram up, application processing on the server, a BITMAP character
echo down, timed console decode.

Rows 2-3 — x11perf / Xmark93 with and without transmitting display data
(see :mod:`repro.server.xserver` for the model and its calibration).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import commands as cmd
from repro.core.wire import WireCodec
from repro.console.console import Console
from repro.experiments.runner import (
    ExperimentConfig,
    ExperimentResult,
    experiment,
)
from repro.framebuffer.painter import PaintKind, PaintOp
from repro.framebuffer.regions import Rect
from repro.netsim.backend import LocalBackend
from repro.netsim.packet import Packet
from repro.netsim.transport import Endpoint, Network
from repro.server.slimdriver import SlimDriver
from repro.server.xserver import XPerfSuite
from repro.units import ETHERNET_100, MICROSECOND, MILLISECOND

#: Server-side processing for the trivial echo application: interrupt,
#: socket delivery, event dispatch, glyph render, driver encode.  A few
#: hundred microseconds of kernel + X-server path on the 296 MHz CPU.
ECHO_APP_SECONDS = 505e-6
#: The same path through Emacs: keymap lookup, buffer update, redisplay.
EMACS_APP_SECONDS = 3.78e-3


@dataclass
class EchoRun:
    """Result of one keystroke-echo measurement."""

    total_seconds: float
    network_seconds: float
    server_seconds: float
    console_seconds: float


def run_echo(app_seconds: float = ECHO_APP_SECONDS) -> EchoRun:
    """Run the keystroke -> server -> pixels-on-display experiment."""
    sim = LocalBackend()
    network = Network(sim, default_rate_bps=ETHERNET_100)
    console = Console(sim=sim, address="console", record_service_times=True)
    codec = WireCodec()
    timings = {}

    def send_command(command: cmd.DisplayCommand) -> None:
        network.send_burst(
            [
                Packet.acquire(
                    "server", "console", datagram.wire_nbytes, payload=datagram
                )
                for datagram in codec.fragment(command)
            ]
        )

    # The server side of the echo is the real driver path: the glyph
    # render arrives as a TEXT paint op and the (accounting-only)
    # SlimDriver encodes it to the same one-cell BITMAP the paper's
    # driver emits.
    driver = SlimDriver(track_baselines=False, send=send_command)

    def on_server_packet(packet: Packet) -> None:
        timings["server_rx"] = sim.now

        def respond() -> None:
            timings["server_tx"] = sim.now
            # Echo one 7x13 character cell (a BITMAP on the wire).
            driver.update(
                sim.now, [PaintOp(PaintKind.TEXT, Rect(100, 100, 7, 13))]
            )

        sim.schedule(app_seconds, respond)

    network.attach(console.make_endpoint())
    network.attach(Endpoint("server", on_receive=on_server_packet))

    keystroke = cmd.KeyEvent(code=0x41, pressed=True)
    key_datagrams = WireCodec().fragment(keystroke)
    start = sim.now
    network.send_burst(
        [
            Packet.acquire(
                "console", "server", datagram.wire_nbytes, payload=datagram
            )
            for datagram in key_datagrams
        ]
    )
    sim.run()
    if console.stats.commands_processed == 0:
        raise RuntimeError("echo command never reached the console")
    total = sim.now - start
    console_seconds = console.stats.busy_time
    server_seconds = timings["server_tx"] - timings["server_rx"]
    network_seconds = total - server_seconds - console_seconds
    return EchoRun(
        total_seconds=total,
        network_seconds=network_seconds,
        server_seconds=server_seconds,
        console_seconds=console_seconds,
    )


@experiment(
    "table4", title="Stand-alone benchmarks for the Sun Ray 1", section="4.1"
)
def run(config: ExperimentConfig) -> ExperimentResult:
    """Produce the Table 4 reproduction."""
    echo = run_echo()
    emacs = run_echo(app_seconds=EMACS_APP_SECONDS)
    suite = config.get("suite") or XPerfSuite()
    result = ExperimentResult(
        experiment_id="table4",
        title="Stand-alone benchmarks for the Sun Ray 1",
        rows=[
            {
                "benchmark": "Response time over 100Mbps switched IF",
                "measured": f"{echo.total_seconds / MICROSECOND:.0f} us",
                "paper": "550 us",
            },
            {
                "benchmark": "Keystroke echo via Emacs",
                "measured": f"{emacs.total_seconds / MILLISECOND:.2f} ms",
                "paper": "3.83 ms",
            },
            {
                "benchmark": "x11perf / Xmark93",
                "measured": f"{suite.xmark(send=True):.3f}",
                "paper": "3.834",
            },
            {
                "benchmark": "x11perf / Xmark93 - no display data sent",
                "measured": f"{suite.xmark(send=False):.3f}",
                "paper": "7.505",
            },
        ],
        notes=[
            "echo breakdown: "
            f"network {echo.network_seconds / MICROSECOND:.1f} us, "
            f"server {echo.server_seconds / MICROSECOND:.1f} us, "
            f"console {echo.console_seconds / MICROSECOND:.1f} us",
            "the communication medium is a negligible source of latency; "
            "response time is dominated by server processing",
        ],
    )
    return result

