"""Yardstick applications (Sections 6.1 and 6.2).

Two yardsticks gauge a shared system:

* the **CPU yardstick** — 30 ms of processing per event, 150 ms of think
  time — lives in :class:`repro.server.scheduler.PeriodicTask`; the
  constants are re-exported here so experiments read like the paper;
* the **network yardstick** (this module) — "repeatedly sending a 64B
  command packet to the server followed by a 1200B response and then
  150ms of think time", measuring average round-trip packet delay as
  background users are added (Figure 11).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import WorkloadError
from repro.netsim.backend import SimulationBackend
from repro.netsim.packet import Packet
from repro.netsim.transport import Network
from repro.obs.context import get_obs
from repro.telemetry.metrics import MetricsRegistry, get_registry

#: The CPU yardstick's constants (Section 6.1).
CPU_YARDSTICK_BURST = 0.030
CPU_YARDSTICK_THINK = 0.150

#: The network yardstick's constants (Section 6.2).
NET_YARDSTICK_REQUEST_NBYTES = 64
NET_YARDSTICK_RESPONSE_NBYTES = 1200
NET_YARDSTICK_THINK = 0.150

#: RTT histogram bounds, seconds: sub-ms LAN detail through the 150 ms
#: interactivity cadence up to multi-second bufferbloat, so windowed
#: quantiles can place p95 on either side of the SLO threshold.
YARDSTICK_RTT_BUCKETS = (
    0.002,
    0.005,
    0.010,
    0.025,
    0.050,
    0.075,
    0.100,
    0.150,
    0.250,
    0.500,
    1.0,
    2.0,
    5.0,
)


class NetworkYardstick:
    """The Figure 11 probe: 64B up, 1200B down, 150 ms think, repeat.

    The console-side endpoint sends the request; the server-side hook
    responds immediately with the 1200B "display update".  Round-trip
    times are recorded from request injection to response delivery.

    Args:
        sim: Event engine.
        network: The fabric under test.
        console_addr: Address of the endpoint playing the active console.
        server_addr: Address of the server endpoint.
        think: Think time between round trips.
        warmup: Samples taken before this time are discarded.
        registry: Telemetry registry for the per-round RTT histogram
            (``net.yardstick.rtt_seconds``); defaults to the ambient
            registry, and costs nothing when telemetry is disabled.
    """

    def __init__(
        self,
        sim: SimulationBackend,
        network: Network,
        console_addr: str,
        server_addr: str,
        think: float = NET_YARDSTICK_THINK,
        warmup: float = 0.0,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.console_addr = console_addr
        self.server_addr = server_addr
        self.think = think
        self.warmup = warmup
        self.rtts: List[float] = []
        self.lost = 0
        self._sent_at: Optional[float] = None
        self._seq = 0
        m = registry if registry is not None else get_registry()
        self._m_rtt = (
            m.histogram(
                "net.yardstick.rtt_seconds", buckets=YARDSTICK_RTT_BUCKETS
            )
            if m.enabled
            else None
        )
        obs = get_obs()
        self._tracer = obs.tracer if obs is not None else None
        self._probe_id: Optional[int] = None

    # -- wiring -------------------------------------------------------------
    def handle_server_packet(self, packet: Packet) -> None:
        """Install as (or call from) the server endpoint's receive hook."""
        if packet.flow != "yardstick-request":
            return
        response = Packet.acquire(
            self.server_addr,
            self.console_addr,
            NET_YARDSTICK_RESPONSE_NBYTES,
            flow="yardstick-response",
            payload=packet.payload,
        )
        self.network.send(response)

    def handle_console_packet(self, packet: Packet) -> None:
        """Install as (or call from) the console endpoint's receive hook."""
        if packet.flow != "yardstick-response":
            return
        if packet.payload != self._seq or self._sent_at is None:
            return  # a stale response from a timed-out round
        rtt = self.sim.now - self._sent_at
        if self.sim.now >= self.warmup:
            self.rtts.append(rtt)
            if self._m_rtt is not None:
                self._m_rtt.observe(rtt)
        self._sent_at = None
        self._close_probe()
        self.sim.schedule(self.think, self._send_request)

    # -- probe loop -----------------------------------------------------------
    def start(self) -> None:
        self.sim.schedule(self.think, self._send_request)

    def _send_request(self) -> None:
        self._seq += 1
        self._sent_at = self.sim.now
        seq = self._seq
        if self._tracer is not None:
            # One probe span per round: open until the response lands
            # (or the round is declared lost), so slow rounds show up in
            # the open-trace set that health events are annotated with.
            self._probe_id = self._tracer.begin_probe(
                "net.yardstick.round", self.sim.now
            )
        request = Packet.acquire(
            self.console_addr,
            self.server_addr,
            NET_YARDSTICK_REQUEST_NBYTES,
            flow="yardstick-request",
            payload=seq,
        )
        delivered = self.network.send(request)
        if not delivered:
            self._handle_loss(seq)
            return
        # Guard against response loss: retry if no answer in 500 ms.
        self.sim.schedule(0.5, lambda: self._check_timeout(seq))

    def _check_timeout(self, seq: int) -> None:
        if self._sent_at is not None and self._seq == seq:
            self._handle_loss(seq)

    def _handle_loss(self, seq: int) -> None:
        if self._seq != seq:
            return
        self.lost += 1
        self._sent_at = None
        self._close_probe()
        self.sim.schedule(self.think, self._send_request)

    def _close_probe(self) -> None:
        if self._tracer is not None and self._probe_id is not None:
            self._tracer.end_probe(self._probe_id, self.sim.now)
            self._probe_id = None

    # -- results ----------------------------------------------------------------
    def mean_rtt(self) -> float:
        """Average round-trip delay, seconds (Figure 11's y-axis)."""
        if not self.rtts:
            raise WorkloadError("yardstick collected no samples")
        return float(np.mean(self.rtts))

    def loss_rate(self) -> float:
        total = len(self.rtts) + self.lost
        return self.lost / total if total else 0.0
