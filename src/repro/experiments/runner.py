"""Experiment registry, typed run configuration, and plain-text rendering.

Each experiment module produces an :class:`ExperimentResult`: an
identifier matching the paper (``table4``, ``fig9``, ...), a set of rows
(dictionaries sharing a column set), and free-form notes recording the
paper-vs-measured comparison.  ``python -m repro.experiments`` runs the
registered set and prints each as a text table — the reproduction of the
paper's evaluation section.

Experiments register themselves with the :func:`experiment` decorator and
receive a typed :class:`ExperimentConfig` carrying the common knobs
(seed, duration, number of simulated users, telemetry registry)::

    @experiment("fig9", title="Interactive latency under CPU load",
                section="6.1")
    def run(config: ExperimentConfig) -> ExperimentResult:
        sim_seconds = config.get("duration", DEFAULT_SIM_SECONDS)
        ...

The decorated ``run`` stays directly callable — ``run()``,
``run(config)``, and keyword overrides like ``run(seed=5)`` all work; the
overrides are folded into the config.
"""

from __future__ import annotations

import functools
import warnings
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import ReproError
from repro.telemetry.metrics import MetricsRegistry, get_registry


@dataclass
class ExperimentResult:
    """The output of one experiment run."""

    experiment_id: str
    title: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def column_names(self) -> List[str]:
        names: List[str] = []
        for row in self.rows:
            for key in row:
                if key not in names:
                    names.append(key)
        return names

    def row_values(self, key: str) -> List[object]:
        """All values of one column, in row order."""
        return [row[key] for row in self.rows if key in row]


#: Typed fields of :class:`ExperimentConfig`; everything else lands in
#: ``extra``.
_TYPED_FIELDS = ("seed", "duration", "n_users", "registry")
#: Legacy keyword spellings still accepted by experiment wrappers.
_KEYWORD_ALIASES = {"sim_seconds": "duration"}


@dataclass(frozen=True)
class ExperimentConfig:
    """Common knobs shared by every experiment.

    A field left at ``None`` means "use the experiment's published
    default" — the defaults that reproduce the paper's numbers live in
    the experiment modules, not here.

    Attributes:
        seed: Root RNG seed for the simulated user population.
        duration: Simulated seconds to run (where applicable).
        n_users: Number of simulated users / sessions.
        registry: Telemetry sink threaded through to instrumented
            components; ``None`` defers to the process-global registry.
        extra: Experiment-specific keyword overrides (e.g. ``suite=``
            for table4).
    """

    seed: Optional[int] = None
    duration: Optional[float] = None
    n_users: Optional[int] = None
    registry: Optional[MetricsRegistry] = None
    extra: Dict[str, object] = field(default_factory=dict)

    def get(self, name: str, default: object = None) -> object:
        """A field or extra override by name, or ``default`` if unset."""
        if name in _TYPED_FIELDS:
            value = getattr(self, name)
            return default if value is None else value
        return self.extra.get(name, default)

    def resolved_registry(self) -> MetricsRegistry:
        """The telemetry sink to use: explicit, else the global one."""
        return self.registry if self.registry is not None else get_registry()

    def with_overrides(self, **overrides: object) -> "ExperimentConfig":
        """A copy with keyword overrides folded in (aliases resolved)."""
        if not overrides:
            return self
        typed: Dict[str, object] = {}
        extra = dict(self.extra)
        for key, value in overrides.items():
            if key in _KEYWORD_ALIASES:
                canonical = _KEYWORD_ALIASES[key]
                warnings.warn(
                    f"keyword {key!r} is deprecated; use {canonical!r}",
                    DeprecationWarning,
                    stacklevel=3,
                )
                key = canonical
            if key in _TYPED_FIELDS:
                typed[key] = value
            else:
                extra[key] = value
        return replace(self, extra=extra, **typed)


def _coerce_config(
    config: Optional[ExperimentConfig], overrides: Dict[str, object]
) -> ExperimentConfig:
    if config is None:
        config = ExperimentConfig()
    elif not isinstance(config, ExperimentConfig):
        raise ReproError(
            f"expected ExperimentConfig, got {type(config).__name__}; "
            "pass knobs as keywords (e.g. run(seed=5))"
        )
    return config.with_overrides(**overrides)


@dataclass(frozen=True)
class ExperimentSpec:
    """A registered experiment: identity plus its config-taking runner."""

    experiment_id: str
    title: str
    section: Optional[str]
    runner: Callable[..., ExperimentResult]

    def __call__(
        self, config: Optional[ExperimentConfig] = None, **overrides: object
    ) -> ExperimentResult:
        return self.runner(config, **overrides)


#: Registered experiments, in registration order.
EXPERIMENTS: Dict[str, ExperimentSpec] = {}


def _register_spec(spec: ExperimentSpec) -> None:
    if spec.experiment_id in EXPERIMENTS:
        raise ReproError(
            f"experiment {spec.experiment_id!r} already registered"
        )
    EXPERIMENTS[spec.experiment_id] = spec


def experiment(
    experiment_id: str, *, title: str = "", section: Optional[str] = None
) -> Callable[[Callable[[ExperimentConfig], ExperimentResult]], Callable]:
    """Register an experiment runner.

    The decorated function takes one :class:`ExperimentConfig` argument;
    the returned wrapper additionally accepts keyword overrides that are
    folded into the config, so existing call sites like ``run(seed=5)``
    keep working.
    """

    def decorate(fn: Callable[[ExperimentConfig], ExperimentResult]):
        @functools.wraps(fn)
        def wrapper(
            config: Optional[ExperimentConfig] = None, **overrides: object
        ) -> ExperimentResult:
            return fn(_coerce_config(config, overrides))

        spec = ExperimentSpec(
            experiment_id=experiment_id,
            title=title or (fn.__doc__ or experiment_id).strip().splitlines()[0],
            section=section,
            runner=wrapper,
        )
        _register_spec(spec)
        wrapper.spec = spec
        return wrapper

    return decorate


def run_all(
    ids: Optional[Sequence[str]] = None,
    config: Optional[ExperimentConfig] = None,
) -> List[ExperimentResult]:
    """Run registered experiments (all, or the named subset) in order."""
    selected = list(EXPERIMENTS) if ids is None else list(ids)
    results = []
    for experiment_id in selected:
        spec = EXPERIMENTS.get(experiment_id)
        if spec is None:
            raise ReproError(f"unknown experiment {experiment_id!r}")
        results.append(spec.runner(config))
    return results


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(result: ExperimentResult) -> str:
    """Render a result as a fixed-width text table."""
    lines = [f"== {result.experiment_id}: {result.title} =="]
    columns = result.column_names()
    if columns:
        cells = [
            [_format_cell(row.get(col, "")) for col in columns]
            for row in result.rows
        ]
        widths = [
            max(len(col), *(len(r[i]) for r in cells)) if cells else len(col)
            for i, col in enumerate(columns)
        ]
        header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row_cells in cells:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row_cells, widths)))
    for note in result.notes:
        lines.append(f"  note: {note}")
    return "\n".join(lines)
