"""Unit tests for the video and Quake workload models."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.framebuffer.yuv import rgb_to_yuv
from repro.workloads.quake import (
    ENGINE_FIXED_S_PER_FRAME,
    QUAKE_FULL,
    QUAKE_QUARTER,
    QUAKE_THREE_QUARTER,
    QuakeConfig,
    QuakeEngine,
)
from repro.workloads.video import (
    MPEG2_CLIP,
    NTSC_LIVE,
    VideoClip,
    VideoSourceSpec,
)


class TestVideoSpecs:
    def test_paper_geometries(self):
        assert (MPEG2_CLIP.width, MPEG2_CLIP.height) == (720, 480)
        assert (NTSC_LIVE.width, NTSC_LIVE.height) == (640, 240)

    def test_decode_rates_near_observed(self):
        # MPEG decode alone leaves room above 20Hz; extraction brings the
        # full pipeline down to the paper's 20Hz (tested in experiments).
        assert 1 / MPEG2_CLIP.decode_s_per_frame > 20
        assert 1 / NTSC_LIVE.decode_s_per_frame > 16

    def test_scaled_variant(self):
        half = NTSC_LIVE.scaled(320, 240)
        assert half.pixels == 320 * 240
        ratio = half.decode_s_per_frame / NTSC_LIVE.decode_s_per_frame
        assert ratio == pytest.approx(0.5)

    def test_invalid_spec(self):
        with pytest.raises(WorkloadError):
            VideoSourceSpec("x", 0, 10, 30, 0.01)
        with pytest.raises(WorkloadError):
            VideoSourceSpec("x", 10, 10, 0, 0.01)

    def test_clip_frames(self):
        clip = VideoClip(VideoSourceSpec("x", 32, 24, 30, 0.01), seed=1)
        frames = list(clip.frames(3))
        assert len(frames) == 3
        assert frames[0].shape == (24, 32, 3)
        assert not np.array_equal(frames[0], frames[1])

    def test_clip_negative_count(self):
        clip = VideoClip(MPEG2_CLIP)
        with pytest.raises(WorkloadError):
            list(clip.frames(-1))


class TestQuakeConfig:
    def test_paper_resolutions(self):
        assert (QUAKE_FULL.width, QUAKE_FULL.height) == (640, 480)
        assert (QUAKE_THREE_QUARTER.width, QUAKE_THREE_QUARTER.height) == (480, 360)
        assert (QUAKE_QUARTER.width, QUAKE_QUARTER.height) == (320, 240)

    def test_costs_match_paper_at_full_res(self):
        assert QUAKE_FULL.translate_s_per_frame() == pytest.approx(0.030)
        assert QUAKE_FULL.transmit_s_per_frame() == pytest.approx(0.013)

    def test_translate_scales_with_area(self):
        ratio = (
            QUAKE_THREE_QUARTER.translate_s_per_frame()
            / QUAKE_FULL.translate_s_per_frame()
        )
        assert ratio == pytest.approx(0.5625)

    def test_render_includes_fixed_cost(self):
        assert QUAKE_QUARTER.render_s_per_frame(0.0) > ENGINE_FIXED_S_PER_FRAME

    def test_scene_complexity_bounds(self):
        with pytest.raises(WorkloadError):
            QUAKE_FULL.render_s_per_frame(1.5)

    def test_upper_bound_frame_rate_near_23hz(self):
        """The paper: translate + transmit alone bound 640x480 at ~23Hz."""
        bound = 1.0 / (
            QUAKE_FULL.translate_s_per_frame() + QUAKE_FULL.transmit_s_per_frame()
        )
        assert bound == pytest.approx(23.3, rel=0.02)


class TestQuakeEngine:
    def test_frames_are_indexed_8bit(self):
        engine = QuakeEngine(QUAKE_QUARTER, seed=1)
        frame = engine.render_frame()
        assert frame.shape == (240, 320)
        assert frame.dtype == np.uint8

    def test_translate_uses_lookup_table(self):
        engine = QuakeEngine(QUAKE_QUARTER, seed=1)
        indexed = engine.render_frame()
        yuv = engine.translate(indexed)
        # Spot-check: every pixel's YUV equals the table entry.
        expected = rgb_to_yuv(engine.colormap[None, :, :])[0]
        sample = indexed[::37, ::41]
        assert np.allclose(yuv[::37, ::41], expected[sample])

    def test_translate_validates_shape(self):
        engine = QuakeEngine(QUAKE_QUARTER)
        with pytest.raises(WorkloadError):
            engine.translate(np.zeros((10, 10), dtype=np.uint8))

    def test_rgb_frame_consistent_with_colormap(self):
        engine = QuakeEngine(QUAKE_QUARTER, seed=2)
        indexed = engine.render_frame()
        rgb = engine.rgb_frame(indexed)
        assert np.array_equal(rgb[0, 0], engine.colormap[indexed[0, 0]])

    def test_frames_iterator_pairs(self):
        engine = QuakeEngine(QUAKE_QUARTER, seed=3)
        pairs = list(engine.frames(2))
        assert len(pairs) == 2
        indexed, rgb = pairs[0]
        assert rgb.shape == (240, 320, 3)
        assert np.array_equal(rgb, engine.colormap[indexed])

    def test_frames_animate(self):
        engine = QuakeEngine(QUAKE_QUARTER, seed=4)
        a = engine.render_frame()
        b = engine.render_frame()
        assert not np.array_equal(a, b)
