"""The CSCS payload codec: RGB frames <-> packed YUV plane bitstreams.

This is the lossy half of the SLIM protocol.  The server-side video
library converts frames to YUV, subsamples and quantizes the planes to the
requested bits-per-pixel budget (Table 5 lists console decode costs for
16/12/8/5 bpp), and packs them into a dense bitstream.  The console
reverses the process and hands RGB pixels to the graphics controller.

The plane layouts per depth come from
:data:`repro.framebuffer.yuv.CSCS_LADDER`; payload sizes are computed by
:func:`repro.core.commands.cscs_plane_bytes` and these two functions are
kept in exact agreement (asserted by tests).
"""

from __future__ import annotations


import numpy as np

from repro.errors import ProtocolError
from repro.core.commands import cscs_plane_bytes
from repro.core.wire import pack_bits, unpack_bits
from repro.framebuffer.yuv import CSCS_LADDER, rgb_to_yuv, yuv_to_rgb


def _quantize_plane(plane: np.ndarray, bits: int, lo: float, hi: float) -> np.ndarray:
    """Map float values in [lo, hi] to integer level indices."""
    levels = (1 << bits) - 1
    clipped = np.clip(plane, lo, hi)
    return np.rint((clipped - lo) / (hi - lo) * levels).astype(np.uint8)


def _dequantize_plane(indices: np.ndarray, bits: int, lo: float, hi: float) -> np.ndarray:
    levels = (1 << bits) - 1
    return indices.astype(np.float64) / levels * (hi - lo) + lo


def _subsample_plane(plane: np.ndarray, fx: int, fy: int) -> np.ndarray:
    """Box-average a plane into ceil(h/fy) x ceil(w/fx) blocks."""
    h, w = plane.shape
    ph = -h % fy
    pw = -w % fx
    padded = np.pad(plane, ((0, ph), (0, pw)), mode="edge")
    bh, bw = padded.shape[0] // fy, padded.shape[1] // fx
    return padded.reshape(bh, fy, bw, fx).mean(axis=(1, 3))


def _upsample_plane(plane: np.ndarray, fx: int, fy: int, w: int, h: int) -> np.ndarray:
    """Nearest-neighbour replicate a subsampled plane back to (h, w)."""
    restored = np.repeat(np.repeat(plane, fy, axis=0), fx, axis=1)
    return restored[:h, :w]


def encode_frame(rgb: np.ndarray, bits_per_pixel: int) -> bytes:
    """Encode an (h, w, 3) uint8 RGB frame into a CSCS payload."""
    if bits_per_pixel not in CSCS_LADDER:
        raise ProtocolError(f"unsupported CSCS depth {bits_per_pixel}")
    if rgb.ndim != 3 or rgb.shape[2] != 3:
        raise ProtocolError(f"expected (h, w, 3) frame, got shape {rgb.shape}")
    (fx, fy), luma_bits, chroma_bits = CSCS_LADDER[bits_per_pixel]
    h, w = rgb.shape[:2]
    yuv = rgb_to_yuv(rgb)
    luma = _quantize_plane(yuv[:, :, 0], luma_bits, 0.0, 255.0)
    u = _subsample_plane(yuv[:, :, 1], fx, fy)
    v = _subsample_plane(yuv[:, :, 2], fx, fy)
    u_idx = _quantize_plane(u, chroma_bits, -128.0, 127.0)
    v_idx = _quantize_plane(v, chroma_bits, -128.0, 127.0)
    payload = (
        pack_bits(luma, luma_bits)
        + pack_bits(u_idx, chroma_bits)
        + pack_bits(v_idx, chroma_bits)
    )
    expected = cscs_plane_bytes(w, h, bits_per_pixel)
    if len(payload) != expected:
        raise ProtocolError(
            f"internal codec error: produced {len(payload)} bytes, "
            f"size model says {expected}"
        )
    return payload


def decode_frame(payload: bytes, width: int, height: int, bits_per_pixel: int) -> np.ndarray:
    """Decode a CSCS payload back into an (h, w, 3) uint8 RGB frame."""
    if bits_per_pixel not in CSCS_LADDER:
        raise ProtocolError(f"unsupported CSCS depth {bits_per_pixel}")
    expected = cscs_plane_bytes(width, height, bits_per_pixel)
    if len(payload) != expected:
        raise ProtocolError(
            f"CSCS payload is {len(payload)} bytes, expected {expected} "
            f"for {width}x{height}@{bits_per_pixel}bpp"
        )
    (fx, fy), luma_bits, chroma_bits = CSCS_LADDER[bits_per_pixel]
    cw = -(-width // fx)
    ch = -(-height // fy)
    luma_nbytes = (width * height * luma_bits + 7) // 8
    chroma_nbytes = (cw * ch * chroma_bits + 7) // 8
    offset = 0
    luma_idx = unpack_bits(payload[offset : offset + luma_nbytes], width * height, luma_bits)
    offset += luma_nbytes
    u_idx = unpack_bits(payload[offset : offset + chroma_nbytes], cw * ch, chroma_bits)
    offset += chroma_nbytes
    v_idx = unpack_bits(payload[offset : offset + chroma_nbytes], cw * ch, chroma_bits)

    luma = _dequantize_plane(luma_idx, luma_bits, 0.0, 255.0).reshape(height, width)
    u = _dequantize_plane(u_idx, chroma_bits, -128.0, 127.0).reshape(ch, cw)
    v = _dequantize_plane(v_idx, chroma_bits, -128.0, 127.0).reshape(ch, cw)
    yuv = np.stack(
        [
            luma,
            _upsample_plane(u, fx, fy, width, height),
            _upsample_plane(v, fx, fy, width, height),
        ],
        axis=-1,
    )
    return yuv_to_rgb(yuv)


def roundtrip_error(rgb: np.ndarray, bits_per_pixel: int) -> float:
    """Mean absolute per-channel error of an encode/decode round trip."""
    decoded = decode_frame(
        encode_frame(rgb, bits_per_pixel), rgb.shape[1], rgb.shape[0], bits_per_pixel
    )
    return float(
        np.mean(np.abs(rgb.astype(np.float64) - decoded.astype(np.float64)))
    )
